package sparse

import (
	"container/heap"
	"sort"
)

// An Ordering names one of the COLPERM fill-reducing permutation choices.
type Ordering int

const (
	// Natural keeps the original order (SuperLU's NATURAL).
	Natural Ordering = iota
	// RCM is reverse Cuthill–McKee (bandwidth-reducing).
	RCM
	// MinDegree is quotient-graph minimum degree (SuperLU's MMD_AT_PLUS_A
	// analogue).
	MinDegree
	// RandomOrder is a seeded random permutation — a deliberately bad
	// baseline, making COLPERM a genuinely consequential categorical
	// parameter.
	RandomOrder
	// NestedDissection recursively bisects the graph with BFS level-set
	// separators (SPARSPAK-style; SuperLU's METIS_AT_PLUS_A analogue).
	NestedDissection
)

// OrderingNames lists the categorical labels in Ordering value order.
var OrderingNames = []string{"NATURAL", "RCM", "MMD", "RANDOM", "METIS"}

func (o Ordering) String() string {
	if int(o) < len(OrderingNames) {
		return OrderingNames[o]
	}
	return "UNKNOWN"
}

// Order computes the permutation for the given strategy: perm[k] is the old
// vertex eliminated k-th.
func Order(p *Pattern, o Ordering, seed int64) []int32 {
	switch o {
	case RCM:
		return orderRCM(p)
	case MinDegree:
		return orderMinDegree(p)
	case NestedDissection:
		return orderND(p)
	case RandomOrder:
		perm := identityPerm(p.N)
		// Deterministic Fisher–Yates driven by a simple LCG (avoids pulling
		// math/rand into hot paths).
		state := uint64(seed)*6364136223846793005 + 1442695040888963407
		for i := p.N - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		return perm
	default:
		return identityPerm(p.N)
	}
}

func identityPerm(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// orderRCM runs reverse Cuthill–McKee from a pseudo-peripheral vertex of
// each connected component.
func orderRCM(p *Pattern) []int32 {
	n := p.N
	visited := make([]bool, n)
	perm := make([]int32, 0, n)
	deg := func(v int32) int { return len(p.Adj[v]) }

	bfsLevels := func(start int32) (last int32, order []int32) {
		order = append(order, start)
		seen := map[int32]bool{start: true}
		frontier := []int32{start}
		last = start
		for len(frontier) > 0 {
			var next []int32
			for _, u := range frontier {
				nbrs := append([]int32(nil), p.Adj[u]...)
				sort.Slice(nbrs, func(i, j int) bool { return deg(nbrs[i]) < deg(nbrs[j]) })
				for _, v := range nbrs {
					if !seen[v] && !visited[v] {
						seen[v] = true
						next = append(next, v)
						order = append(order, v)
					}
				}
			}
			if len(next) > 0 {
				last = next[len(next)-1]
			}
			frontier = next
		}
		return last, order
	}

	for comp := 0; comp < n; comp++ {
		if visited[comp] {
			continue
		}
		// Pseudo-peripheral start: BFS twice from the component seed.
		far, _ := bfsLevels(int32(comp))
		_, order := bfsLevels(far)
		for _, v := range order {
			visited[v] = true
			perm = append(perm, v)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// degItem is a heap entry for lazy-deletion minimum degree selection.
type degItem struct {
	deg int
	v   int32
}

type degHeap []degItem

func (h degHeap) Len() int { return len(h) }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h degHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x any)   { *h = append(*h, x.(degItem)) }
func (h *degHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// orderMinDegree is a quotient-graph minimum-degree ordering with
// AMD-style approximate external degrees (upper bounds) and element
// absorption.
func orderMinDegree(p *Pattern) []int32 {
	n := p.N
	// Variable-variable adjacency (mutable copies).
	adj := make([]map[int32]struct{}, n)
	for u := range adj {
		adj[u] = make(map[int32]struct{}, len(p.Adj[u]))
		for _, v := range p.Adj[u] {
			adj[u][v] = struct{}{}
		}
	}
	// Elements created by eliminations.
	var elems [][]int32                       // element id → boundary variables (alive subset maintained lazily)
	varElems := make([]map[int32]struct{}, n) // variable → element ids
	for u := range varElems {
		varElems[u] = make(map[int32]struct{})
	}
	eliminated := make([]bool, n)
	approxDeg := make([]int, n)
	h := make(degHeap, 0, n)
	for u := 0; u < n; u++ {
		approxDeg[u] = len(adj[u])
		h = append(h, degItem{deg: approxDeg[u], v: int32(u)})
	}
	heap.Init(&h)

	perm := make([]int32, 0, n)
	mark := make([]int, n)
	stamp := 0

	for len(perm) < n {
		var v int32 = -1
		for h.Len() > 0 {
			it := heap.Pop(&h).(degItem)
			if !eliminated[it.v] && it.deg == approxDeg[it.v] {
				v = it.v
				break
			}
		}
		if v < 0 {
			// Heap exhausted by stale entries; pick any remaining vertex.
			for u := 0; u < n; u++ {
				if !eliminated[u] {
					v = int32(u)
					break
				}
			}
		}
		eliminated[v] = true
		perm = append(perm, v)

		// Boundary = alive variable neighbors ∪ boundaries of adjacent
		// elements (computed with a visitation stamp).
		stamp++
		var boundary []int32
		//gptlint:ignore no-map-range stamp-deduplicated set collection; boundary is sorted below before any order-sensitive use
		for u := range adj[v] {
			if !eliminated[u] && mark[u] != stamp {
				mark[u] = stamp
				boundary = append(boundary, u)
			}
		}
		//gptlint:ignore no-map-range absorption order is irrelevant to the collected set; boundary is sorted below
		for e := range varElems[v] {
			for _, u := range elems[e] {
				if !eliminated[u] && u != v && mark[u] != stamp {
					mark[u] = stamp
					boundary = append(boundary, u)
				}
			}
			elems[e] = nil // absorbed
		}
		// boundary's *content* is a set, but its order flows into element
		// lists, heap push order, and ultimately the permutation; sort it so
		// the ordering is bitwise reproducible run to run.
		sort.Slice(boundary, func(i, j int) bool { return boundary[i] < boundary[j] })

		newElem := int32(len(elems))
		elems = append(elems, boundary)
		for _, u := range boundary {
			// Remove v and absorbed elements from u's lists; attach the new
			// element.
			delete(adj[u], v)
			//gptlint:ignore no-map-range pure set subtraction; deletion order cannot affect the result
			for e := range varElems[v] {
				delete(varElems[u], e)
			}
			varElems[u][newElem] = struct{}{}
			// Approximate external degree: variable neighbors plus element
			// boundary sizes (upper bound; AMD's d̄).
			d := len(adj[u])
			//gptlint:ignore no-map-range integer summation; addition over a set is order-free
			for e := range varElems[u] {
				d += len(elems[e]) - 1
			}
			if d != approxDeg[u] {
				approxDeg[u] = d
				heap.Push(&h, degItem{deg: d, v: u})
			}
		}
	}
	return perm
}
