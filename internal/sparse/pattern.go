// Package sparse provides the symbolic sparse-matrix machinery behind the
// SuperLU_DIST simulator: symmetric sparsity patterns, fill-reducing
// orderings (natural, reverse Cuthill–McKee, minimum degree — the COLPERM
// choices of Section 6.2), elimination trees, exact fill/flop counts via
// symbolic factorization, and supernode partitioning controlled by the
// NSUP/NREL tuning parameters.
//
// Everything here operates on patterns only (no numerical values): the
// tuning-relevant effects of COLPERM/NSUP/NREL flow entirely through fill
// and supernode granularity, which are computed exactly rather than faked.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"
)

// Pattern is the symmetric adjacency structure of a sparse matrix (diagonal
// implicit, no self-loops, edges stored once per endpoint).
type Pattern struct {
	N   int
	Adj [][]int32 // sorted neighbor lists
}

// NNZ returns the nonzero count of the represented matrix (off-diagonals
// plus the diagonal).
func (p *Pattern) NNZ() int {
	n := p.N
	for _, a := range p.Adj {
		n += len(a)
	}
	return n
}

// Validate checks structural invariants: sorted lists, symmetric edges, no
// self loops, indices in range.
func (p *Pattern) Validate() error {
	if len(p.Adj) != p.N {
		return fmt.Errorf("sparse: %d adjacency lists for N=%d", len(p.Adj), p.N)
	}
	for u, a := range p.Adj {
		for i, v := range a {
			if int(v) < 0 || int(v) >= p.N {
				return fmt.Errorf("sparse: vertex %d has out-of-range neighbor %d", u, v)
			}
			if int(v) == u {
				return fmt.Errorf("sparse: self-loop at %d", u)
			}
			if i > 0 && a[i-1] >= v {
				return fmt.Errorf("sparse: adjacency of %d not strictly sorted", u)
			}
			if !contains(p.Adj[v], int32(u)) {
				return fmt.Errorf("sparse: edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	return nil
}

func contains(sorted []int32, x int32) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	return i < len(sorted) && sorted[i] == x
}

// builder accumulates edges then produces a Pattern.
type builder struct {
	n    int
	sets []map[int32]struct{}
}

func newBuilder(n int) *builder {
	return &builder{n: n, sets: make([]map[int32]struct{}, n)}
}

func (b *builder) addEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	if b.sets[u] == nil {
		b.sets[u] = make(map[int32]struct{})
	}
	if b.sets[v] == nil {
		b.sets[v] = make(map[int32]struct{})
	}
	b.sets[u][int32(v)] = struct{}{}
	b.sets[v][int32(u)] = struct{}{}
}

func (b *builder) build() *Pattern {
	p := &Pattern{N: b.n, Adj: make([][]int32, b.n)}
	for u, s := range b.sets {
		a := make([]int32, 0, len(s))
		//gptlint:ignore no-map-range key collection only; keys are sorted on the next line
		for v := range s {
			a = append(a, v)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		p.Adj[u] = a
	}
	return p
}

// Grid3D returns the pattern of a radius-r finite-difference stencil on an
// nx×ny×nz grid (r=1 gives the 27-point stencil; the 7-point stencil is the
// subset with Manhattan radius 1, selectable via manhattan).
func Grid3D(nx, ny, nz, r int, manhattan bool) *Pattern {
	n := nx * ny * nz
	b := newBuilder(n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u := id(x, y, z)
				for dz := -r; dz <= r; dz++ {
					for dy := -r; dy <= r; dy++ {
						for dx := -r; dx <= r; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							if manhattan && abs(dx)+abs(dy)+abs(dz) > r {
								continue
							}
							X, Y, Z := x+dx, y+dy, z+dz
							if X < 0 || Y < 0 || Z < 0 || X >= nx || Y >= ny || Z >= nz {
								continue
							}
							v := id(X, Y, Z)
							if v > u {
								b.addEdge(u, v)
							}
						}
					}
				}
			}
		}
	}
	return b.build()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Hamiltonian synthesizes a PARSEC-like density-functional Hamiltonian
// pattern: n orbitals placed on a 3D lattice inside a cube, coupled to all
// lattice neighbors within a radius chosen to reach approximately avgDeg
// off-diagonals per row, plus a small fraction of longer-range couplings.
// Deterministic in seed. This stands in for the SuiteSparse PARSEC matrices
// (Si2, SiH4, ...) whose published dimensions and densities it mimics.
func Hamiltonian(n, avgDeg int, seed int64) *Pattern {
	rng := rand.New(rand.NewSource(seed))
	side := 1
	for side*side*side < n {
		side++
	}
	b := newBuilder(n)
	pos := make([][3]int, n)
	// Fill the cube in scan order; positions are dense so neighbor lookup
	// is direct.
	idOf := make(map[[3]int]int, n)
	k := 0
	for z := 0; z < side && k < n; z++ {
		for y := 0; y < side && k < n; y++ {
			for x := 0; x < side && k < n; x++ {
				pos[k] = [3]int{x, y, z}
				idOf[pos[k]] = k
				k++
			}
		}
	}
	// Choose the coupling radius to reach roughly avgDeg neighbors: a ball
	// of Chebyshev radius r holds (2r+1)³-1 lattice points.
	r := 1
	for (2*r+1)*(2*r+1)*(2*r+1)-1 < avgDeg {
		r++
	}
	for u := 0; u < n; u++ {
		p := pos[u]
		count := 0
		for dz := -r; dz <= r && count < avgDeg; dz++ {
			for dy := -r; dy <= r && count < avgDeg; dy++ {
				for dx := -r; dx <= r && count < avgDeg; dx++ {
					if dx == 0 && dy == 0 && dz == 0 {
						continue
					}
					q := [3]int{p[0] + dx, p[1] + dy, p[2] + dz}
					if v, ok := idOf[q]; ok && v > u {
						b.addEdge(u, v)
						count++
					}
				}
			}
		}
		// ~2% long-range couplings (delocalized orbitals).
		for e := 0; e < avgDeg/50+1; e++ {
			b.addEdge(u, rng.Intn(n))
		}
	}
	return b.build()
}

// Permute returns the pattern relabeled so that perm[k] (an old vertex id)
// becomes vertex k.
func (p *Pattern) Permute(perm []int32) *Pattern {
	inv := make([]int32, p.N)
	for newID, old := range perm {
		inv[old] = int32(newID)
	}
	out := &Pattern{N: p.N, Adj: make([][]int32, p.N)}
	for old, a := range p.Adj {
		u := inv[old]
		na := make([]int32, len(a))
		for i, v := range a {
			na[i] = inv[v]
		}
		sort.Slice(na, func(i, j int) bool { return na[i] < na[j] })
		out.Adj[u] = na
	}
	return out
}
