package sparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPattern(rng *rand.Rand, n, edges int) *Pattern {
	b := newBuilder(n)
	for e := 0; e < edges; e++ {
		b.addEdge(rng.Intn(n), rng.Intn(n))
	}
	// Connect a spanning chain so orderings see one component.
	for i := 0; i+1 < n; i++ {
		b.addEdge(i, i+1)
	}
	return b.build()
}

func TestGrid3DCounts(t *testing.T) {
	// 7-point stencil on a 3×3×3 grid: interior vertex has 6 neighbors.
	p := Grid3D(3, 3, 3, 1, true)
	if p.N != 27 {
		t.Fatalf("N = %d", p.N)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	center := (1*3+1)*3 + 1
	if len(p.Adj[center]) != 6 {
		t.Fatalf("center degree %d, want 6", len(p.Adj[center]))
	}
	corner := 0
	if len(p.Adj[corner]) != 3 {
		t.Fatalf("corner degree %d, want 3", len(p.Adj[corner]))
	}
	// 27-point stencil: center has 26 neighbors.
	p27 := Grid3D(3, 3, 3, 1, false)
	if len(p27.Adj[center]) != 26 {
		t.Fatalf("27-pt center degree %d", len(p27.Adj[center]))
	}
}

func TestHamiltonianShape(t *testing.T) {
	p := Hamiltonian(769, 22, 1)
	if p.N != 769 {
		t.Fatalf("N = %d", p.N)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(p.NNZ()-p.N) / float64(p.N)
	if avg < 8 || avg > 44 {
		t.Fatalf("average degree %v far from target 22", avg)
	}
	// Determinism.
	q := Hamiltonian(769, 22, 1)
	if q.NNZ() != p.NNZ() {
		t.Fatalf("same seed differs: %d vs %d", p.NNZ(), q.NNZ())
	}
}

func TestPermuteIsRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomPattern(rng, 30, 60)
	perm := Order(p, RandomOrder, 7)
	pp := p.Permute(perm)
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	if pp.NNZ() != p.NNZ() {
		t.Fatalf("permute changed nnz")
	}
}

// Property: every ordering returns a valid permutation.
func TestOrderingsAreValidPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		p := randomPattern(rng, n, 3*n)
		for _, o := range []Ordering{Natural, RCM, MinDegree, RandomOrder, NestedDissection} {
			perm := Order(p, o, seed)
			if len(perm) != n {
				return false
			}
			seen := make([]bool, n)
			for _, v := range perm {
				if v < 0 || int(v) >= n || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEliminationTreeChain(t *testing.T) {
	// A path graph 0-1-2-3 in natural order: parent(i) = i+1.
	b := newBuilder(4)
	b.addEdge(0, 1)
	b.addEdge(1, 2)
	b.addEdge(2, 3)
	p := b.build()
	parent := EliminationTree(p)
	want := []int32{1, 2, 3, -1}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("parent = %v, want %v", parent, want)
		}
	}
}

// bruteFill computes nnz(L) by dense symbolic elimination — the oracle for
// ColCounts.
func bruteFill(p *Pattern) (int64, []int32) {
	n := p.N
	adj := make([]map[int]bool, n)
	for u := range adj {
		adj[u] = map[int]bool{}
		for _, v := range p.Adj[u] {
			adj[u][int(v)] = true
		}
	}
	counts := make([]int32, n)
	var fill int64
	for j := 0; j < n; j++ {
		// Column j of L: j plus its remaining higher neighbors.
		var higher []int
		for v := range adj[j] {
			if v > j {
				higher = append(higher, v)
			}
		}
		counts[j] = int32(1 + len(higher))
		fill += int64(counts[j])
		// Eliminate j: connect all higher neighbors pairwise.
		sort.Ints(higher)
		for a := 0; a < len(higher); a++ {
			for b := a + 1; b < len(higher); b++ {
				adj[higher[a]][higher[b]] = true
				adj[higher[b]][higher[a]] = true
			}
		}
	}
	return fill, counts
}

// Property: ColCounts matches brute-force symbolic elimination.
func TestColCountsAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		p := randomPattern(rng, n, 2*n)
		parent := EliminationTree(p)
		got := ColCounts(p, parent)
		_, want := bruteFill(p)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeFillBounds(t *testing.T) {
	p := Grid3D(6, 6, 6, 1, true)
	a := Analyze(p, identityPerm(p.N))
	// Fill is at least the original lower triangle and at most dense.
	minFill := int64(p.N + (p.NNZ()-p.N)/2)
	maxFill := int64(p.N) * int64(p.N+1) / 2
	if a.FillL < minFill || a.FillL > maxFill {
		t.Fatalf("fill %d outside [%d, %d]", a.FillL, minFill, maxFill)
	}
	if a.Flops <= 0 {
		t.Fatalf("flops %v", a.Flops)
	}
}

func TestMinDegreeReducesFillOnGrid(t *testing.T) {
	// On a 3D grid, minimum degree must beat natural order and the random
	// order by a clear margin — the core property making COLPERM matter.
	p := Grid3D(8, 8, 8, 1, true)
	natural := Analyze(p, Order(p, Natural, 0)).FillL
	md := Analyze(p, Order(p, MinDegree, 0)).FillL
	random := Analyze(p, Order(p, RandomOrder, 1)).FillL
	if md >= natural {
		t.Fatalf("MD fill %d not below natural %d", md, natural)
	}
	if md >= random {
		t.Fatalf("MD fill %d not below random %d", md, random)
	}
}

func TestRCMBeatsRandomOnGrid(t *testing.T) {
	p := Grid3D(8, 8, 8, 1, true)
	rcm := Analyze(p, Order(p, RCM, 0)).FillL
	random := Analyze(p, Order(p, RandomOrder, 1)).FillL
	if rcm >= random {
		t.Fatalf("RCM fill %d not below random %d", rcm, random)
	}
}

func TestSupernodesPartitionProperties(t *testing.T) {
	p := Grid3D(6, 6, 6, 1, true)
	perm := Order(p, MinDegree, 0)
	a := Analyze(p, perm)
	for _, nsup := range []int{1, 8, 64, 1000} {
		for _, nrel := range []int{0, 4, 32} {
			snodes, stats := Supernodes(a.Parent, a.ColCounts, nsup, nrel)
			// Partition covers [0, n) contiguously.
			pos := 0
			for _, sn := range snodes {
				if sn.Start != pos || sn.Len < 1 || sn.Len > nsup {
					t.Fatalf("nsup=%d nrel=%d: bad supernode %+v at pos %d", nsup, nrel, sn, pos)
				}
				pos += sn.Len
			}
			if pos != p.N {
				t.Fatalf("partition covers %d of %d", pos, p.N)
			}
			if stats.Count != len(snodes) || stats.Padding < 0 {
				t.Fatalf("stats inconsistent: %+v", stats)
			}
		}
	}
}

func TestSupernodesRelaxationGrowsBlocks(t *testing.T) {
	p := Grid3D(6, 6, 6, 1, true)
	perm := Order(p, MinDegree, 0)
	a := Analyze(p, perm)
	_, strict := Supernodes(a.Parent, a.ColCounts, 64, 0)
	_, relaxed := Supernodes(a.Parent, a.ColCounts, 64, 16)
	if relaxed.Count > strict.Count {
		t.Fatalf("relaxation increased supernode count: %d > %d", relaxed.Count, strict.Count)
	}
	if relaxed.Count == strict.Count && relaxed.Padding == 0 {
		t.Logf("relaxation had no effect on this matrix (acceptable but unusual)")
	}
	if relaxed.AvgLen < strict.AvgLen {
		t.Fatalf("relaxation shrank average block: %v < %v", relaxed.AvgLen, strict.AvgLen)
	}
}

func TestSupernodesNSUP1(t *testing.T) {
	parent := []int32{1, 2, -1}
	counts := []int32{3, 2, 1}
	snodes, stats := Supernodes(parent, counts, 1, 0)
	if len(snodes) != 3 || stats.MaxLen != 1 {
		t.Fatalf("nsup=1 must give singleton supernodes: %+v", snodes)
	}
}

func TestPatternValidateCatchesCorruption(t *testing.T) {
	p := &Pattern{N: 2, Adj: [][]int32{{1}, {}}}
	if err := p.Validate(); err == nil {
		t.Fatalf("asymmetric edge accepted")
	}
	p2 := &Pattern{N: 2, Adj: [][]int32{{0}, {}}}
	if err := p2.Validate(); err == nil {
		t.Fatalf("self-loop accepted")
	}
	p3 := &Pattern{N: 1, Adj: [][]int32{{5}}}
	if err := p3.Validate(); err == nil {
		t.Fatalf("out-of-range neighbor accepted")
	}
}

func TestNestedDissectionValidAndEffective(t *testing.T) {
	p := Grid3D(10, 10, 10, 1, true)
	perm := Order(p, NestedDissection, 0)
	seen := make([]bool, p.N)
	for _, v := range perm {
		if v < 0 || int(v) >= p.N || seen[v] {
			t.Fatalf("invalid permutation")
		}
		seen[v] = true
	}
	nd := Analyze(p, perm).FillL
	natural := Analyze(p, Order(p, Natural, 0)).FillL
	random := Analyze(p, Order(p, RandomOrder, 1)).FillL
	if nd >= natural || nd >= random {
		t.Fatalf("ND fill %d not below natural %d / random %d", nd, natural, random)
	}
}

func TestNestedDissectionDisconnected(t *testing.T) {
	// Two disjoint chains: ND must order everything exactly once.
	b := newBuilder(8)
	b.addEdge(0, 1)
	b.addEdge(1, 2)
	b.addEdge(2, 3)
	b.addEdge(4, 5)
	b.addEdge(5, 6)
	b.addEdge(6, 7)
	p := b.build()
	perm := Order(p, NestedDissection, 0)
	if len(perm) != 8 {
		t.Fatalf("perm covers %d of 8", len(perm))
	}
	seen := map[int32]bool{}
	for _, v := range perm {
		if seen[v] {
			t.Fatalf("duplicate vertex %d", v)
		}
		seen[v] = true
	}
}

func TestOrderingNamesCoverEnum(t *testing.T) {
	for _, o := range []Ordering{Natural, RCM, MinDegree, RandomOrder, NestedDissection} {
		if o.String() == "UNKNOWN" {
			t.Fatalf("missing name for %d", int(o))
		}
	}
}
