package sparse

// Symbolic Cholesky-style analysis of a (permuted) symmetric pattern:
// elimination tree, exact column counts of the factor L, fill and flop
// totals, and NSUP/NREL-controlled supernode partitioning. SuperLU_DIST's
// LU on a nonsymmetric matrix is modeled by the symmetric analysis of
// A+Aᵀ with L and U both following the Cholesky pattern (the standard
// upper-bound used by its own MMD_AT_PLUS_A preprocessing).

// EliminationTree computes parent pointers of the elimination tree of the
// pattern in its current (already permuted) order, using Liu's algorithm
// with path compression. parent[j] == -1 marks a root.
func EliminationTree(p *Pattern) []int32 {
	n := p.N
	parent := make([]int32, n)
	anc := make([]int32, n)
	for i := range parent {
		parent[i] = -1
		anc[i] = -1
	}
	for i := 0; i < n; i++ {
		for _, k := range p.Adj[i] {
			if int(k) >= i {
				continue // lower triangle only
			}
			j := k
			for anc[j] != -1 && anc[j] != int32(i) {
				next := anc[j]
				anc[j] = int32(i)
				j = next
			}
			if anc[j] == -1 {
				anc[j] = int32(i)
				parent[j] = int32(i)
			}
		}
	}
	return parent
}

// ColCounts returns, for each column j of the Cholesky factor of the
// (already permuted) pattern, the number of nonzeros in L(:,j) including
// the diagonal. Runs in O(nnz(L)) time via row-subtree traversal.
func ColCounts(p *Pattern, parent []int32) []int32 {
	n := p.N
	counts := make([]int32, n)
	mark := make([]int32, n)
	for j := range counts {
		counts[j] = 1 // diagonal
		mark[j] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = int32(i)
		for _, k := range p.Adj[i] {
			if int(k) >= i {
				continue
			}
			j := k
			for j != -1 && mark[j] != int32(i) {
				counts[j]++ // row i appears in column j of L
				mark[j] = int32(i)
				j = parent[j]
			}
		}
	}
	return counts
}

// Analysis summarizes the symbolic factorization of one ordering.
type Analysis struct {
	Parent    []int32 // elimination tree
	ColCounts []int32 // nnz per factor column (incl. diagonal)
	FillL     int64   // nnz(L)
	Flops     float64 // Cholesky flops Σ cc(j)²; LU ≈ 2×
}

// Analyze permutes the pattern by perm and runs the symbolic factorization.
func Analyze(p *Pattern, perm []int32) *Analysis {
	pp := p.Permute(perm)
	parent := EliminationTree(pp)
	counts := ColCounts(pp, parent)
	a := &Analysis{Parent: parent, ColCounts: counts}
	for _, c := range counts {
		a.FillL += int64(c)
		fc := float64(c)
		a.Flops += fc * fc
	}
	return a
}

// Supernode describes one supernode of the factor.
type Supernode struct {
	Start, Len int // first column and column count
}

// SupernodeStats summarizes a partition for the cost model.
type SupernodeStats struct {
	Count   int     // number of supernodes
	MaxLen  int     // widest supernode
	AvgLen  float64 // mean width
	Padding float64 // explicit zeros introduced by relaxed merging (entries)
	// WeightedLen is the flop-weighted mean supernode width: each supernode
	// contributes its width weighted by Σ cc(j)² over its columns. This is
	// the width "seen" by the BLAS-3 kernels where the work actually
	// happens (the dense trailing submatrix), hence what drives factor-
	// phase efficiency.
	WeightedLen float64
}

// Supernodes partitions columns into supernodes: consecutive columns merge
// when they form a fundamental supernode chain (parent(j) = j+1 and
// cc(j) = cc(j+1)+1) or, relaxed, when the mismatch is small and the subtree
// ending at the chain is at most nrel columns (SuperLU's "relaxed
// supernodes" for the bottom of the elimination tree, which trade explicit
// zero padding for larger blocks). nsup caps the supernode width.
func Supernodes(parent []int32, counts []int32, nsup, nrel int) ([]Supernode, SupernodeStats) {
	n := len(parent)
	if nsup < 1 {
		nsup = 1
	}
	if nrel < 0 {
		nrel = 0
	}
	// Subtree sizes for the relaxation criterion.
	subtree := make([]int32, n)
	for i := range subtree {
		subtree[i] = 1
	}
	for j := 0; j < n; j++ {
		if parent[j] >= 0 {
			subtree[parent[j]] += subtree[j]
		}
	}
	var (
		snodes []Supernode
		stats  SupernodeStats
		start  = 0
	)
	flush := func(end int) { // [start, end)
		if end <= start {
			return
		}
		sn := Supernode{Start: start, Len: end - start}
		snodes = append(snodes, sn)
		if sn.Len > stats.MaxLen {
			stats.MaxLen = sn.Len
		}
		start = end
	}
	for j := 0; j+1 < n; j++ {
		width := j + 1 - start
		chain := parent[j] == int32(j+1)
		fundamental := chain && counts[j] == counts[j+1]+1
		relaxed := chain && int(subtree[j+1]) <= nrel
		if width >= nsup || !(fundamental || relaxed) {
			flush(j + 1)
			continue
		}
		if !fundamental && relaxed {
			// Explicit zeros: column j is padded to the length of the merged
			// supernode's leading column.
			pad := float64(counts[j+1]+1) - float64(counts[j])
			if pad > 0 {
				stats.Padding += pad
			}
		}
	}
	flush(n)
	stats.Count = len(snodes)
	if stats.Count > 0 {
		stats.AvgLen = float64(n) / float64(stats.Count)
	}
	var wSum, wTot float64
	for _, sn := range snodes {
		w := 0.0
		for j := sn.Start; j < sn.Start+sn.Len; j++ {
			c := float64(counts[j])
			w += c * c
		}
		wSum += w * float64(sn.Len)
		wTot += w
	}
	if wTot > 0 {
		stats.WeightedLen = wSum / wTot
	}
	return snodes, stats
}
