package surrogate

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/gp"
)

// gpIndepFitter fits one single-task GP per task — the multitask ablation:
// identical kernels and optimizer to the LCM backend, but no information
// flows between tasks. On a single-task dataset it is bitwise identical to
// the lcm backend (task 0's fit receives exactly opts.Seed, and FitLCM
// clamps Q to δ=1 either way), which the cross-backend parity test pins.
type gpIndepFitter struct{}

func (gpIndepFitter) Kind() string { return KindGPIndep }

// perTaskSeed spreads task fits across seed space. Task 0 keeps the base
// seed unchanged — the single-task parity guarantee depends on it.
func perTaskSeed(base int64, task int) int64 {
	return base + int64(task)*1000003
}

func (gpIndepFitter) Fit(data *Dataset, opts FitOptions) (Model, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	warm := warmTaskSnapshots(opts.WarmStart, KindGPIndep)
	models := make([]*gp.LCM, data.NumTasks())
	for i := range models {
		sub := &Dataset{Dim: data.Dim, X: data.X[i : i+1], Y: data.Y[i : i+1]}
		fo := gp.FitOptions{
			Q:         opts.Q,
			NumStarts: opts.NumStarts,
			Workers:   opts.Workers,
			MaxIter:   opts.MaxIter,
			Seed:      perTaskSeed(opts.Seed, i),
		}
		if i < len(warm) {
			fo.Init = warmHyperparameters(warm[i])
		}
		m, err := gp.FitLCM(sub, fo)
		if err != nil {
			return nil, fmt.Errorf("surrogate: fitting task %d GP: %w", i, err)
		}
		models[i] = m
	}
	return &gpIndepModel{models: models}, nil
}

func (gpIndepFitter) UnmarshalBinary(data []byte) (Model, error) {
	blobs, err := decodeMultiSnapshot(data, KindGPIndep)
	if err != nil {
		return nil, err
	}
	models := make([]*gp.LCM, len(blobs))
	for i, blob := range blobs {
		var m gp.LCM
		if err := m.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("surrogate: task %d snapshot: %w", i, err)
		}
		models[i] = &m
	}
	return &gpIndepModel{models: models}, nil
}

// gpIndepModel holds δ independent single-task GPs; task i predictions route
// to models[i] with its local task index 0.
type gpIndepModel struct {
	models []*gp.LCM
}

func (g *gpIndepModel) Kind() string  { return KindGPIndep }
func (g *gpIndepModel) NumTasks() int { return len(g.models) }

// gpIndepWorkspace carries one gp workspace per task so a searcher goroutine
// can probe any task allocation-free.
type gpIndepWorkspace struct {
	wss []*gp.PredictWorkspace
}

func (g *gpIndepModel) NewWorkspace() Workspace {
	wss := make([]*gp.PredictWorkspace, len(g.models))
	for i, m := range g.models {
		wss[i] = m.NewPredictWorkspace()
	}
	return &gpIndepWorkspace{wss: wss}
}

//gptlint:hotpath
func (g *gpIndepModel) PredictInto(ws Workspace, task int, x []float64) (mean, variance float64) {
	return g.models[task].PredictInto(ws.(*gpIndepWorkspace).wss[task], 0, x)
}

// Append extends each per-task GP with its slice of the delta (task i's new
// samples go to sub-model i at its local task index 0). A mid-loop failure
// leaves earlier tasks extended — the caller's refit fallback re-derives
// every model from data, so partial application is harmless.
func (g *gpIndepModel) Append(data *Dataset, workers int) error {
	if len(data.X) != len(g.models) || len(data.Y) != len(g.models) {
		return fmt.Errorf("surrogate: gp-indep append got %d tasks, model has %d", len(data.X), len(g.models))
	}
	for i, m := range g.models {
		if len(data.X[i]) == 0 {
			continue
		}
		tasks := make([]int, len(data.X[i]))
		if err := m.AppendObservations(data.X[i], tasks, data.Y[i], workers); err != nil {
			return fmt.Errorf("surrogate: appending task %d: %w", i, err)
		}
	}
	return nil
}

func (g *gpIndepModel) MarshalBinary() ([]byte, error) {
	blobs := make([]json.RawMessage, len(g.models))
	for i, m := range g.models {
		blob, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return encodeMultiSnapshot(KindGPIndep, blobs)
}

// multiSnapshot is the wire container for per-task model collections
// (gp-indep and rf). The kind tag rejects cross-backend loads early.
type multiSnapshot struct {
	Kind   string            `json:"kind"`
	Models []json.RawMessage `json:"models"`
}

func encodeMultiSnapshot(kind string, blobs []json.RawMessage) ([]byte, error) {
	return json.Marshal(multiSnapshot{Kind: kind, Models: blobs})
}

func decodeMultiSnapshot(data []byte, kind string) ([]json.RawMessage, error) {
	var snap multiSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("surrogate: decoding %s snapshot: %w", kind, err)
	}
	if snap.Kind != kind {
		return nil, fmt.Errorf("surrogate: snapshot kind %q, want %q", snap.Kind, kind)
	}
	if len(snap.Models) == 0 {
		return nil, errors.New("surrogate: snapshot has no per-task models")
	}
	return snap.Models, nil
}

// warmTaskSnapshots splits a warm-start container into per-task blobs,
// returning nil on any mismatch (best-effort transfer, never an error).
func warmTaskSnapshots(snapshot []byte, kind string) []json.RawMessage {
	if len(snapshot) == 0 {
		return nil
	}
	blobs, err := decodeMultiSnapshot(snapshot, kind)
	if err != nil {
		return nil
	}
	return blobs
}
