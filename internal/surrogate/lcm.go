package surrogate

import (
	"fmt"

	"repro/internal/gp"
)

// lcmFitter is the default backend: the paper's multitask LCM, delegating to
// internal/gp. The translation to gp.FitOptions is field-for-field so a fit
// through this wrapper is bitwise identical to calling gp.FitLCM directly —
// the refactor's compatibility contract with pre-surrogate histories.
type lcmFitter struct{}

func (lcmFitter) Kind() string { return KindLCM }

func (lcmFitter) Fit(data *Dataset, opts FitOptions) (Model, error) {
	fo := gp.FitOptions{
		Q:         opts.Q,
		NumStarts: opts.NumStarts,
		Workers:   opts.Workers,
		MaxIter:   opts.MaxIter,
		Seed:      opts.Seed,
		Init:      warmHyperparameters(opts.WarmStart),
	}
	m, err := gp.FitLCM(data, fo)
	if err != nil {
		return nil, err
	}
	return &lcmModel{m: m}, nil
}

func (lcmFitter) UnmarshalBinary(data []byte) (Model, error) {
	var m gp.LCM
	if err := m.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return &lcmModel{m: &m}, nil
}

// warmHyperparameters decodes a warm-start snapshot into the hyperparameter
// vector FitLCM.Init expects. Any decoding failure returns nil (cold start):
// transfer snapshots come from earlier sessions that may have tuned a
// different problem shape, and FitLCM itself still ignores vectors whose
// layout doesn't match the current fit.
func warmHyperparameters(snapshot []byte) []float64 {
	if len(snapshot) == 0 {
		return nil
	}
	var m gp.LCM
	if err := m.UnmarshalBinary(snapshot); err != nil {
		return nil
	}
	return m.Hyperparameters()
}

// lcmModel adapts *gp.LCM to the Model interface.
type lcmModel struct {
	m *gp.LCM
}

func (l *lcmModel) Kind() string            { return KindLCM }
func (l *lcmModel) NumTasks() int           { return l.m.NumTasks }
func (l *lcmModel) NewWorkspace() Workspace { return l.m.NewPredictWorkspace() }

//gptlint:hotpath
func (l *lcmModel) PredictInto(ws Workspace, task int, x []float64) (mean, variance float64) {
	return l.m.PredictInto(ws.(*gp.PredictWorkspace), task, x)
}

func (l *lcmModel) MarshalBinary() ([]byte, error) { return l.m.MarshalBinary() }

// Append extends the wrapped LCM with the delta's samples via the rank-k
// packed Cholesky extension (gp.AppendObservations): hyperparameters frozen,
// O(k·n²) instead of a refit's O(n³).
func (l *lcmModel) Append(data *Dataset, workers int) error {
	if len(data.X) != l.m.NumTasks || len(data.Y) != len(data.X) {
		return fmt.Errorf("surrogate: lcm append got %d tasks, model has %d", len(data.X), l.m.NumTasks)
	}
	total := 0
	for i := range data.X {
		total += len(data.X[i])
	}
	if total == 0 {
		return nil
	}
	xs := make([][]float64, 0, total)
	tasks := make([]int, 0, total)
	ys := make([]float64, 0, total)
	for i := range data.X {
		for j := range data.X[i] {
			xs = append(xs, data.X[i][j])
			tasks = append(tasks, i)
			ys = append(ys, data.Y[i][j])
		}
	}
	return l.m.AppendObservations(xs, tasks, ys, workers)
}

// LCM exposes the wrapped model for consumers that need LCM-specific state
// (the facade's coefficient reporting, LOO diagnostics). It returns nil for
// other backends' models.
func LCM(m Model) *gp.LCM {
	if l, ok := m.(*lcmModel); ok {
		return l.m
	}
	return nil
}
