package surrogate

import (
	"encoding/json"
	"fmt"

	"repro/internal/rf"
)

// rfFitter grows one random forest per task — the SuRF-style baseline. No
// uncertainty calibration is attempted beyond the across-tree variance; the
// acquisition layer's variance floor absorbs the forests' habit of reporting
// exactly zero variance deep inside leaves.
type rfFitter struct{}

func (rfFitter) Kind() string { return KindRF }

func (rfFitter) Fit(data *Dataset, opts FitOptions) (Model, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	forests := make([]*rf.Forest, data.NumTasks())
	for i := range forests {
		f, err := rf.Fit(data.X[i], data.Y[i], rf.Params{
			Seed:    perTaskSeed(opts.Seed, i),
			Workers: opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("surrogate: fitting task %d forest: %w", i, err)
		}
		forests[i] = f
	}
	return &rfModel{forests: forests}, nil
}

func (rfFitter) UnmarshalBinary(data []byte) (Model, error) {
	blobs, err := decodeMultiSnapshot(data, KindRF)
	if err != nil {
		return nil, err
	}
	forests := make([]*rf.Forest, len(blobs))
	for i, blob := range blobs {
		var f rf.Forest
		if err := f.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("surrogate: task %d snapshot: %w", i, err)
		}
		forests[i] = &f
	}
	return &rfModel{forests: forests}, nil
}

// rfModel holds δ per-task forests. Forest prediction walks fixed trees with
// no scratch state, so the workspace is nil and PredictInto ignores it.
type rfModel struct {
	forests []*rf.Forest
}

func (r *rfModel) Kind() string            { return KindRF }
func (r *rfModel) NumTasks() int           { return len(r.forests) }
func (r *rfModel) NewWorkspace() Workspace { return nil }

//gptlint:hotpath
func (r *rfModel) PredictInto(_ Workspace, task int, x []float64) (mean, variance float64) {
	return r.forests[task].Predict(x)
}

func (r *rfModel) MarshalBinary() ([]byte, error) {
	blobs := make([]json.RawMessage, len(r.forests))
	for i, f := range r.forests {
		blob, err := f.MarshalBinary()
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return encodeMultiSnapshot(KindRF, blobs)
}
