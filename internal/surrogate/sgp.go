package surrogate

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/gp"
	"repro/internal/la"
	"repro/internal/mpx"
)

// defaultInducing is the per-task inducing-set size when FitOptions.Inducing
// is unset. 128 keeps fitting O(n·m²) ≈ linear in history length while the
// m×m factors stay small enough that prediction costs microseconds.
const defaultInducing = 128

// noiseFloor bounds 1/σ² in the DTC algebra when the optimizer drives the
// noise hyperparameter toward zero.
const noiseFloor = 1e-12

// sgpFitter fits one sparse GP per task: a deterministic-training-conditional
// (DTC / projected-process) inducing-point approximation in the style of the
// subset-of-data scaling tricks of Snoek et al. Hyperparameters are learned
// by the exact single-task fit on the inducing subset itself (m points, so
// the O(m³) cost is independent of n), then the DTC posterior is built from
// all n points in O(n·m²):
//
//	Q_m = K_mm + σ⁻²·K_mn·K_nm
//	μ(x)  = k*ᵀ·σ⁻²·Q_m⁻¹·K_mn·y
//	σ²(x) = k** − k*ᵀK_mm⁻¹k* + k*ᵀQ_m⁻¹k* + σ²
//
// The inducing subset is chosen by a seeded shuffle of the task's samples
// (sorted back into canonical order), so the whole fit is seed-deterministic
// and — like every backend — bitwise independent of FitOptions.Workers: the
// K_mn and Q_m builds distribute rows whose summation order is fixed.
type sgpFitter struct{}

func (sgpFitter) Kind() string { return KindSGP }

func (sgpFitter) Fit(data *Dataset, opts FitOptions) (Model, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	inducing := opts.Inducing
	if inducing <= 0 {
		inducing = defaultInducing
	}
	warm := warmTaskSnapshots(opts.WarmStart, KindSGP)
	tasks := make([]*taskSGP, data.NumTasks())
	for i := range tasks {
		var warmTheta []float64
		if i < len(warm) {
			warmTheta = warmTaskTheta(warm[i])
		}
		ts, err := fitTaskSGP(data.X[i], data.Y[i], data.Dim, inducing, opts, perTaskSeed(opts.Seed, i), warmTheta)
		if err != nil {
			return nil, fmt.Errorf("surrogate: fitting task %d sparse GP: %w", i, err)
		}
		tasks[i] = ts
	}
	return &sgpModel{tasks: tasks}, nil
}

// taskSGP is one task's fitted sparse GP. qmat and r are the sufficient
// statistics the posterior is derived from; Append folds new points into
// them and re-derives the m×m factor and alpha, never touching the O(n)
// training set again.
type taskSGP struct {
	dim    int
	n      int       // samples absorbed (bookkeeping only)
	m      int       // inducing-set size
	z      []float64 // m×dim inducing coordinates, row-major
	ls     []float64 // lengthscales (dim)
	signal float64   // kernel variance a² + b from the subset fit
	noise  float64   // noise variance d from the subset fit
	theta  []float64 // full subset-fit hyperparameter vector (warm starts)
	yMean  float64   // output standardization frozen from the subset fit
	yStd   float64
	prior  float64 // signal + noise

	qmat  *la.Matrix    // Q_m (no jitter), grown by Append
	r     []float64     // K_mn·y accumulator
	lm    *la.TriPacked // chol(K_mm + jitter·I)
	lq    *la.TriPacked // chol(Q_m + jitter·I)
	alpha []float64     // σ⁻²·Q_m⁻¹·r
}

func (ts *taskSGP) invNoise() float64 {
	ns := ts.noise
	if ns < noiseFloor {
		ns = noiseFloor
	}
	return 1 / ns
}

// kern evaluates the task kernel signal·exp(−½·Σ_d ((x_d−z_d)/l_d)²)
// against inducing point i, allocation-free.
func (ts *taskSGP) kern(i int, x []float64) float64 {
	zi := ts.z[i*ts.dim : (i+1)*ts.dim]
	s := 0.0
	for d, ld := range ts.ls {
		diff := (x[d] - zi[d]) / ld
		s += diff * diff
	}
	return ts.signal * math.Exp(-0.5*s)
}

func fitTaskSGP(x [][]float64, y []float64, dim, inducing int, opts FitOptions, seed int64, warmTheta []float64) (*taskSGP, error) {
	n := len(x)
	m := inducing
	if m > n {
		m = n
	}
	// Deterministic seed-derived inducing selection: shuffle, take m, restore
	// canonical (ascending) order so downstream summations have a fixed order.
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:m]
	sort.Ints(idx)

	subX := make([][]float64, m)
	subY := make([]float64, m)
	for j, id := range idx {
		subX[j] = x[id]
		subY[j] = y[id]
	}
	sub := &gp.Dataset{Dim: dim, X: [][][]float64{subX}, Y: [][]float64{subY}}
	fit, err := gp.FitLCM(sub, gp.FitOptions{
		NumStarts: opts.NumStarts,
		Workers:   opts.Workers,
		MaxIter:   opts.MaxIter,
		Seed:      seed,
		Init:      warmTheta,
	})
	if err != nil {
		return nil, err
	}
	yMean, yStd := fit.OutputStats()
	ts := &taskSGP{
		dim:    dim,
		n:      n,
		m:      m,
		z:      make([]float64, m*dim),
		ls:     append([]float64(nil), fit.Ls[0]...),
		signal: fit.A[0][0]*fit.A[0][0] + fit.B[0][0],
		noise:  fit.D[0],
		theta:  fit.Hyperparameters(),
		yMean:  yMean,
		yStd:   yStd,
	}
	ts.prior = ts.signal + ts.noise
	for j, id := range idx {
		copy(ts.z[j*dim:(j+1)*dim], x[id])
	}

	// All outputs, standardized with the subset-fit statistics (the
	// hyperparameters were learned in that space).
	yn := make([]float64, n)
	for j, v := range y {
		yn[j] = (v - yMean) / yStd
	}

	// K_mn rows are independent: parallel build, fixed per-entry arithmetic.
	kmn := la.NewMatrix(m, n)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	mpx.ParallelFor(m, workers, func(i int) {
		row := kmn.Row(i)
		for j := 0; j < n; j++ {
			row[j] = ts.kern(i, x[j])
		}
	})
	inv := ts.invNoise()
	kmm := ts.buildKmm()
	qmat := la.NewMatrix(m, m)
	mpx.ParallelFor(m, workers, func(i int) {
		ri := kmn.Row(i)
		for j := 0; j <= i; j++ {
			v := kmm.At(i, j) + inv*la.Dot(ri, kmn.Row(j))
			qmat.Set(i, j, v)
			qmat.Set(j, i, v)
		}
	})
	ts.qmat = qmat
	ts.r = make([]float64, m)
	for i := 0; i < m; i++ {
		ts.r[i] = la.Dot(kmn.Row(i), yn)
	}
	if err := ts.refactor(kmm); err != nil {
		return nil, err
	}
	return ts, nil
}

// buildKmm assembles the inducing-set Gram matrix from the stored
// coordinates; rebuilt identically on reload, so factors round-trip bitwise.
func (ts *taskSGP) buildKmm() *la.Matrix {
	kmm := la.NewMatrix(ts.m, ts.m)
	for i := 0; i < ts.m; i++ {
		for j := 0; j <= i; j++ {
			v := ts.kern(i, ts.z[j*ts.dim:(j+1)*ts.dim])
			kmm.Set(i, j, v)
			kmm.Set(j, i, v)
		}
	}
	return kmm
}

// refactor derives the posterior factors and weights from (qmat, r): the two
// jittered Cholesky factorizations and alpha. kmm may be nil to rebuild it.
func (ts *taskSGP) refactor(kmm *la.Matrix) error {
	if kmm == nil {
		kmm = ts.buildKmm()
	}
	lm, _, err := la.CholeskyJitter(kmm, 0)
	if err != nil {
		return fmt.Errorf("surrogate: sgp inducing Gram factorization: %w", err)
	}
	lq, _, err := la.CholeskyJitter(ts.qmat, 0)
	if err != nil {
		return fmt.Errorf("surrogate: sgp Q factorization: %w", err)
	}
	ts.lm = la.PackChol(lm)
	ts.lq = la.PackChol(lq)
	alpha := ts.lq.SolveVec(ts.r)
	la.ScaleVec(ts.invNoise(), alpha)
	ts.alpha = alpha
	return nil
}

// sgpModel holds δ independent per-task sparse GPs.
type sgpModel struct {
	tasks []*taskSGP
}

func (s *sgpModel) Kind() string  { return KindSGP }
func (s *sgpModel) NumTasks() int { return len(s.tasks) }

// sgpWorkspace carries per-task O(m) scratch so a searcher goroutine can
// probe any task allocation-free.
type sgpWorkspace struct {
	kstar [][]float64
	v     [][]float64
}

func (s *sgpModel) NewWorkspace() Workspace {
	ws := &sgpWorkspace{
		kstar: make([][]float64, len(s.tasks)),
		v:     make([][]float64, len(s.tasks)),
	}
	for i, ts := range s.tasks {
		ws.kstar[i] = make([]float64, ts.m)
		ws.v[i] = make([]float64, ts.m)
	}
	return ws
}

//gptlint:hotpath
func (s *sgpModel) PredictInto(ws Workspace, task int, x []float64) (mean, variance float64) {
	ts := s.tasks[task]
	w := ws.(*sgpWorkspace)
	kstar, v := w.kstar[task], w.v[task]
	for i := 0; i < ts.m; i++ {
		kstar[i] = ts.kern(i, x)
	}
	mu := la.Dot(kstar, ts.alpha)
	copy(v, kstar)
	ts.lm.ForwardSubst(v)
	vr := ts.prior - la.Dot(v, v)
	copy(v, kstar)
	ts.lq.ForwardSubst(v)
	vr += la.Dot(v, v)
	if vr < 0 {
		vr = 0
	}
	mean = mu*ts.yStd + ts.yMean
	variance = vr * ts.yStd * ts.yStd
	return mean, variance
}

// Append folds new observations into the DTC sufficient statistics: for each
// new point, Q_m += σ⁻²·k·kᵀ and r += y·k with k the point's inducing-set
// cross-covariances, then one O(m³) refactorization re-derives the
// posterior. The inducing set and hyperparameters stay frozen at their
// fitted values. Cost is O(k·m²) + O(m³), independent of history length.
func (s *sgpModel) Append(data *Dataset, workers int) error {
	_ = workers // O(m²) per point: nothing worth parallelizing
	if len(data.X) != len(s.tasks) || len(data.Y) != len(s.tasks) {
		return fmt.Errorf("surrogate: sgp append got %d tasks, model has %d", len(data.X), len(s.tasks))
	}
	for i, ts := range s.tasks {
		if err := validateDelta(data, i, ts.dim); err != nil {
			return err
		}
	}
	kvec := make([]float64, 0)
	for i, ts := range s.tasks {
		if len(data.X[i]) == 0 {
			continue
		}
		if cap(kvec) < ts.m {
			kvec = make([]float64, ts.m)
		}
		kvec = kvec[:ts.m]
		inv := ts.invNoise()
		q := ts.qmat
		for j, x := range data.X[i] {
			for p := 0; p < ts.m; p++ {
				kvec[p] = ts.kern(p, x)
			}
			yn := (data.Y[i][j] - ts.yMean) / ts.yStd
			for p := 0; p < ts.m; p++ {
				kp := inv * kvec[p]
				row := q.Row(p)
				for p2 := 0; p2 <= p; p2++ {
					row[p2] += kp * kvec[p2]
				}
				ts.r[p] += yn * kvec[p]
			}
			ts.n++
		}
		// Mirror the strict-lower updates into the upper triangle.
		for p := 0; p < ts.m; p++ {
			for p2 := 0; p2 < p; p2++ {
				q.Set(p2, p, q.At(p, p2))
			}
		}
		if err := ts.refactor(nil); err != nil {
			return err
		}
	}
	return nil
}

// validateDelta checks one task's slice of an Append delta: matching sample
// and output counts, the fitted dimensionality, finite values. Empty tasks
// are fine — Append deltas carry only what's new.
func validateDelta(data *Dataset, task, dim int) error {
	if len(data.X[task]) != len(data.Y[task]) {
		return fmt.Errorf("surrogate: append task %d: %d samples vs %d outputs", task, len(data.X[task]), len(data.Y[task]))
	}
	for j, x := range data.X[task] {
		if len(x) != dim {
			return fmt.Errorf("surrogate: append task %d sample %d has dim %d, want %d", task, j, len(x), dim)
		}
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("surrogate: append task %d sample %d has non-finite coordinate", task, j)
			}
		}
		if math.IsNaN(data.Y[task][j]) || math.IsInf(data.Y[task][j], 0) {
			return fmt.Errorf("surrogate: append task %d sample %d has non-finite output", task, j)
		}
	}
	return nil
}

// sgpTaskSnapshot is the wire form of one task's sparse GP. Everything the
// posterior needs is either carried ((Q_m, r) sufficient statistics, packed
// lower triangle for Q_m) or rebuilt deterministically from carried state
// (K_mm from the inducing coordinates), so a reloaded model predicts bitwise
// identically — and can keep absorbing appends.
type sgpTaskSnapshot struct {
	Dim    int         `json:"dim"`
	N      int         `json:"n"`
	M      int         `json:"m"`
	Z      gp.NFVec    `json:"z"`
	Ls     gp.NFVec    `json:"ls"`
	Signal gp.NFScalar `json:"signal"`
	Noise  gp.NFScalar `json:"noise"`
	Theta  gp.NFVec    `json:"theta"`
	YMean  gp.NFScalar `json:"y_mean"`
	YStd   gp.NFScalar `json:"y_std"`
	Q      gp.NFVec    `json:"q_packed"`
	R      gp.NFVec    `json:"r"`
}

func (s *sgpModel) MarshalBinary() ([]byte, error) {
	blobs := make([]json.RawMessage, len(s.tasks))
	for i, ts := range s.tasks {
		packed := make([]float64, 0, ts.m*(ts.m+1)/2)
		for p := 0; p < ts.m; p++ {
			packed = append(packed, ts.qmat.Row(p)[:p+1]...)
		}
		blob, err := json.Marshal(sgpTaskSnapshot{
			Dim: ts.dim, N: ts.n, M: ts.m,
			Z: ts.z, Ls: ts.ls,
			Signal: gp.NFScalar(ts.signal), Noise: gp.NFScalar(ts.noise),
			Theta: ts.theta,
			YMean: gp.NFScalar(ts.yMean), YStd: gp.NFScalar(ts.yStd),
			Q: packed, R: ts.r,
		})
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return encodeMultiSnapshot(KindSGP, blobs)
}

func (sgpFitter) UnmarshalBinary(data []byte) (Model, error) {
	blobs, err := decodeMultiSnapshot(data, KindSGP)
	if err != nil {
		return nil, err
	}
	tasks := make([]*taskSGP, len(blobs))
	for i, blob := range blobs {
		ts, err := decodeTaskSGP(blob)
		if err != nil {
			return nil, fmt.Errorf("surrogate: task %d snapshot: %w", i, err)
		}
		tasks[i] = ts
	}
	return &sgpModel{tasks: tasks}, nil
}

func decodeTaskSGP(blob []byte) (*taskSGP, error) {
	var snap sgpTaskSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil, err
	}
	if snap.Dim <= 0 || snap.M <= 0 {
		return nil, errors.New("surrogate: sgp snapshot missing dimensions")
	}
	if len(snap.Z) != snap.M*snap.Dim || len(snap.Ls) != snap.Dim ||
		len(snap.Q) != snap.M*(snap.M+1)/2 || len(snap.R) != snap.M {
		return nil, errors.New("surrogate: sgp snapshot shape mismatch")
	}
	ts := &taskSGP{
		dim:    snap.Dim,
		n:      snap.N,
		m:      snap.M,
		z:      snap.Z,
		ls:     snap.Ls,
		signal: float64(snap.Signal),
		noise:  float64(snap.Noise),
		theta:  snap.Theta,
		yMean:  float64(snap.YMean),
		yStd:   float64(snap.YStd),
	}
	if ts.yStd == 0 { // zero std never leaves a fit; guard against hand-built snapshots
		ts.yStd = 1
	}
	ts.prior = ts.signal + ts.noise
	ts.qmat = la.NewMatrix(ts.m, ts.m)
	at := 0
	for p := 0; p < ts.m; p++ {
		for p2 := 0; p2 <= p; p2++ {
			ts.qmat.Set(p, p2, snap.Q[at])
			ts.qmat.Set(p2, p, snap.Q[at])
			at++
		}
	}
	ts.r = snap.R
	if err := ts.refactor(nil); err != nil {
		return nil, err
	}
	return ts, nil
}

// warmTaskTheta extracts the subset-fit hyperparameter vector from one
// task's warm-start blob; nil on any mismatch (best-effort transfer).
func warmTaskTheta(blob []byte) []float64 {
	var snap sgpTaskSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil
	}
	return snap.Theta
}
