package surrogate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// TestSGPInducingSubset: with Inducing below the sample count the model must
// hold exactly that many inducing points per task and still predict sanely.
func TestSGPInducingSubset(t *testing.T) {
	data := testDataset(19, 2, 30)
	f, err := New(KindSGP)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Fit(data, FitOptions{NumStarts: 1, MaxIter: 10, Seed: 3, Inducing: 8})
	if err != nil {
		t.Fatal(err)
	}
	sm := m.(*sgpModel)
	for i, ts := range sm.tasks {
		if ts.m != 8 {
			t.Fatalf("task %d: %d inducing points, want 8", i, ts.m)
		}
		if ts.n != 30 {
			t.Fatalf("task %d: n = %d, want 30", i, ts.n)
		}
	}
	ws := m.NewWorkspace()
	mu, v := m.PredictInto(ws, 0, []float64{0.5, 0.5})
	if math.IsNaN(mu) || math.IsNaN(v) || v < 0 {
		t.Fatalf("degenerate posterior (%v, %v)", mu, v)
	}
	// Inducing ≥ n clamps to n.
	big, err := f.Fit(data, FitOptions{NumStarts: 1, MaxIter: 5, Seed: 3, Inducing: 500})
	if err != nil {
		t.Fatal(err)
	}
	if ts := big.(*sgpModel).tasks[0]; ts.m != 30 {
		t.Fatalf("Inducing=500 on 30 samples gave m = %d, want 30", ts.m)
	}
}

// TestSGPAppendMatchesBatchStatistics: fit on a prefix, append the rest, and
// check the DTC sufficient statistics (Q_m, r) and the posterior against an
// oracle built from all points in one pass at the same frozen inducing set
// and hyperparameters.
func TestSGPAppendMatchesBatchStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	full := testDataset(21, 2, 24)
	n0 := 16
	head := &Dataset{Dim: 2, X: make([][][]float64, 2), Y: make([][]float64, 2)}
	tail := &Dataset{Dim: 2, X: make([][][]float64, 2), Y: make([][]float64, 2)}
	for i := 0; i < 2; i++ {
		head.X[i], head.Y[i] = full.X[i][:n0], full.Y[i][:n0]
		tail.X[i], tail.Y[i] = full.X[i][n0:], full.Y[i][n0:]
	}
	f, _ := New(KindSGP)
	m, err := f.Fit(head, FitOptions{NumStarts: 1, MaxIter: 10, Seed: 7, Inducing: 10})
	if err != nil {
		t.Fatal(err)
	}
	sm := m.(*sgpModel)
	inc, ok := Model(sm).(Incremental)
	if !ok {
		t.Fatal("sgp model does not implement Incremental")
	}
	if err := inc.Append(tail, 2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	for task, ts := range sm.tasks {
		if ts.n != 24 {
			t.Fatalf("task %d: n = %d, want 24", task, ts.n)
		}
		inv := ts.invNoise()
		kmm := ts.buildKmm()
		kmn := la.NewMatrix(ts.m, 24)
		yn := make([]float64, 24)
		for j := 0; j < 24; j++ {
			yn[j] = (full.Y[task][j] - ts.yMean) / ts.yStd
			for i := 0; i < ts.m; i++ {
				kmn.Set(i, j, ts.kern(i, full.X[task][j]))
			}
		}
		for i := 0; i < ts.m; i++ {
			wantR := la.Dot(kmn.Row(i), yn)
			if math.Abs(ts.r[i]-wantR) > 1e-9*math.Max(1, math.Abs(wantR)) {
				t.Fatalf("task %d: r[%d] = %v, oracle %v", task, i, ts.r[i], wantR)
			}
			for j := 0; j <= i; j++ {
				want := kmm.At(i, j) + inv*la.Dot(kmn.Row(i), kmn.Row(j))
				if math.Abs(ts.qmat.At(i, j)-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("task %d: Q[%d][%d] = %v, oracle %v", task, i, j, ts.qmat.At(i, j), want)
				}
			}
		}
	}
	// Appending point-by-point must reproduce the one-call append bitwise.
	m2, err := f.Fit(head, FitOptions{NumStarts: 1, MaxIter: 10, Seed: 7, Inducing: 10})
	if err != nil {
		t.Fatal(err)
	}
	inc2 := m2.(Incremental)
	for j := range tail.X[0] {
		delta := &Dataset{Dim: 2, X: make([][][]float64, 2), Y: make([][]float64, 2)}
		for i := 0; i < 2; i++ {
			delta.X[i] = tail.X[i][j : j+1]
			delta.Y[i] = tail.Y[i][j : j+1]
		}
		if err := inc2.Append(delta, 1); err != nil {
			t.Fatalf("point append %d: %v", j, err)
		}
	}
	wsA, wsB := m.NewWorkspace(), m2.NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		task := trial % 2
		muA, vA := m.PredictInto(wsA, task, x)
		muB, vB := m2.PredictInto(wsB, task, x)
		if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(vA) != math.Float64bits(vB) {
			t.Fatalf("trial %d: batch vs point-by-point append diverged", trial)
		}
	}
}

// TestSGPSnapshotSurvivesAppend: marshal after append, reload, and keep
// appending — the reload must predict bitwise identically and accept more
// points (snapshots carry the sufficient statistics).
func TestSGPSnapshotSurvivesAppend(t *testing.T) {
	full := testDataset(25, 2, 20)
	head := &Dataset{Dim: 2, X: [][][]float64{full.X[0][:14], full.X[1][:14]}, Y: [][]float64{full.Y[0][:14], full.Y[1][:14]}}
	mid := &Dataset{Dim: 2, X: [][][]float64{full.X[0][14:17], full.X[1][14:17]}, Y: [][]float64{full.Y[0][14:17], full.Y[1][14:17]}}
	tail := &Dataset{Dim: 2, X: [][][]float64{full.X[0][17:], full.X[1][17:]}, Y: [][]float64{full.Y[0][17:], full.Y[1][17:]}}
	f, _ := New(KindSGP)
	m, err := f.Fit(head, FitOptions{NumStarts: 1, MaxIter: 10, Seed: 5, Inducing: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.(Incremental).Append(mid, 1); err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.UnmarshalBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.(Incremental).Append(tail, 1); err != nil {
		t.Fatal(err)
	}
	if err := back.(Incremental).Append(tail, 1); err != nil {
		t.Fatalf("append after reload: %v", err)
	}
	wsA, wsB := m.NewWorkspace(), back.NewWorkspace()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		task := trial % 2
		muA, vA := m.PredictInto(wsA, task, x)
		muB, vB := back.PredictInto(wsB, task, x)
		if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(vA) != math.Float64bits(vB) {
			t.Fatalf("trial %d: reload+append diverged from live model", trial)
		}
	}
}

// TestSGPWarmStart: sgp warm starts ride the multiSnapshot container like
// gp-indep's, seeding the subset fit's first optimizer start.
func TestSGPWarmStart(t *testing.T) {
	data := testDataset(27, 2, 15)
	f, _ := New(KindSGP)
	prev, err := f.Fit(data, FitOptions{NumStarts: 2, MaxIter: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := prev.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	short := FitOptions{NumStarts: 1, MaxIter: 2, Seed: 13}
	cold, err := f.Fit(data, short)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := short
	warmOpts.WarmStart = blob
	warm, err := f.Fit(data, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := f.Fit(data, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.6}
	muC, _ := cold.PredictInto(cold.NewWorkspace(), 0, x)
	muW, _ := warm.PredictInto(warm.NewWorkspace(), 0, x)
	muW2, _ := warm2.PredictInto(warm2.NewWorkspace(), 0, x)
	if math.Float64bits(muW) != math.Float64bits(muW2) {
		t.Fatal("warm-started sgp fit not deterministic")
	}
	if math.Float64bits(muW) == math.Float64bits(muC) {
		t.Fatal("sgp warm start had no effect")
	}
	badOpts := short
	badOpts.WarmStart = []byte("not a snapshot")
	fallback, err := f.Fit(data, badOpts)
	if err != nil {
		t.Fatalf("corrupt warm start failed the fit: %v", err)
	}
	muF, _ := fallback.PredictInto(fallback.NewWorkspace(), 0, x)
	if math.Float64bits(muF) != math.Float64bits(muC) {
		t.Fatal("corrupt sgp warm start did not degrade to cold fit")
	}
}

// TestIncrementalCapability pins which backends extend in place: the GP
// family does, forests don't.
func TestIncrementalCapability(t *testing.T) {
	data := testDataset(29, 2, 10)
	delta := &Dataset{Dim: 2, X: [][][]float64{{{0.5, 0.5}}, {}}, Y: [][]float64{{1.5}, {}}}
	for _, kind := range []string{KindLCM, KindGPIndep, KindSGP} {
		f, _ := New(kind)
		m, err := f.Fit(data, FitOptions{NumStarts: 1, MaxIter: 8, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		inc, ok := m.(Incremental)
		if !ok {
			t.Fatalf("%s: model does not implement Incremental", kind)
		}
		ws := m.NewWorkspace()
		muBefore, _ := m.PredictInto(ws, 0, []float64{0.5, 0.5})
		// Empty delta: no-op.
		empty := &Dataset{Dim: 2, X: [][][]float64{{}, {}}, Y: [][]float64{{}, {}}}
		if err := inc.Append(empty, 1); err != nil {
			t.Fatalf("%s: empty append: %v", kind, err)
		}
		if err := inc.Append(delta, 1); err != nil {
			t.Fatalf("%s: append: %v", kind, err)
		}
		muAfter, v := m.PredictInto(ws, 0, []float64{0.5, 0.5})
		if math.IsNaN(muAfter) || math.IsNaN(v) || v < 0 {
			t.Fatalf("%s: degenerate posterior after append", kind)
		}
		if math.Float64bits(muBefore) == math.Float64bits(muAfter) {
			t.Fatalf("%s: append had no effect on the posterior", kind)
		}
		// Task-count mismatch rejected.
		bad := &Dataset{Dim: 2, X: [][][]float64{{}}, Y: [][]float64{{}}}
		if err := inc.Append(bad, 1); err == nil {
			t.Fatalf("%s: task-count mismatch accepted", kind)
		}
	}
	rfF, _ := New(KindRF)
	m, err := rfF.Fit(data, FitOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(Incremental); ok {
		t.Fatal("rf model unexpectedly implements Incremental")
	}
}
