// Package surrogate abstracts the performance model behind GPTune's MLA
// loop. The engine's modeling phase needs four capabilities — fit a model to
// the multitask history, predict a posterior mean/variance allocation-free
// from concurrent searchers, serialize the fitted state for transfer
// sessions, and rebuild a model from such a snapshot — and this package
// narrows them into the Fitter/Model pair so internal/core never names a
// concrete model type again.
//
// Four backends ship (Kinds() is the authoritative list — CLI help and spec
// validation derive from it, never restate it):
//
//   - "lcm" (default): the paper's Linear Coregionalization Model, sharing
//     latent functions across tasks (Section 3.1). Wraps internal/gp
//     unchanged, cache/parallel hot path included.
//   - "gp-indep": one single-task GP per task, no cross-task sharing — the
//     natural ablation baseline for measuring what multitask learning buys.
//   - "sgp": per-task sparse GPs (deterministic inducing-point DTC
//     approximation) — O(n·m²) fitting and O(m²) prediction, the backend for
//     histories too large for the exact paths.
//   - "rf": per-task random forests (the SuRF-style baseline of Section 5),
//     strongest when parameters are categorical.
//
// Every backend obeys the repo's determinism contract: fitted models are
// bitwise independent of FitOptions.Workers, and a model reloaded from its
// snapshot predicts bitwise identically to the original.
package surrogate

import (
	"fmt"

	"repro/internal/gp"
)

// Dataset is the multitask training set every backend consumes. It is the
// gp package's type by alias so the engine's buildDataset needs no copying,
// but backends are free to reshape it internally.
type Dataset = gp.Dataset

// Workspace is per-goroutine prediction scratch. Callers obtain one from
// Model.NewWorkspace per searcher goroutine and thread it through
// PredictInto; its concrete type is backend-private.
type Workspace any

// Model is a fitted surrogate.
type Model interface {
	// Kind names the backend that fitted this model ("lcm", "gp-indep", "rf").
	Kind() string
	// NumTasks returns δ, the number of tasks the model was fitted on.
	NumTasks() int
	// NewWorkspace allocates prediction scratch for one goroutine. The
	// returned workspace must not be shared across goroutines.
	NewWorkspace() Workspace
	// PredictInto returns the posterior mean and variance at x for the given
	// task, using ws for scratch. It performs no heap allocation, so PSO and
	// NSGA-II inner loops can call it millions of times.
	PredictInto(ws Workspace, task int, x []float64) (mean, variance float64)
	// MarshalBinary serializes the fitted state into a self-contained
	// snapshot that the same backend's UnmarshalBinary restores.
	MarshalBinary() ([]byte, error)
}

// Incremental is the optional Model capability behind core.Options.RefitEvery:
// absorb new observations into the fitted state without re-learning
// hyperparameters (rank-1 factor extension for the GP backends, accumulator
// updates for sparse GPs). Backends that cannot extend (forests) simply don't
// implement it and the engine falls back to refitting.
type Incremental interface {
	// Append extends the model with data's samples. data holds ONLY the new
	// samples per task (a task with nothing new has an empty X[i]); its task
	// count and Dim must match the fitted model. workers bounds internal
	// parallelism and never affects the resulting bits; appending a batch in
	// one call or across several calls yields the same model. On error the
	// model must be treated as stale — the caller refits from scratch (which
	// is also the deterministic fallback the engine takes).
	Append(data *Dataset, workers int) error
}

// FitOptions configures a surrogate fit. The zero value of every field means
// "backend default". Fields without meaning for a backend are ignored (Q and
// NumStarts do nothing for forests).
type FitOptions struct {
	Q         int   // latent functions (LCM only); default min(δ, 3)
	NumStarts int   // optimizer restarts (GP backends); default 4
	Workers   int   // fit parallelism; never affects the fitted model's bits
	MaxIter   int   // optimizer iteration cap (GP backends)
	Seed      int64 // RNG seed; same seed + same data → bitwise same model
	Inducing  int   // inducing points per task (sgp only); default 128

	// WarmStart, when non-empty, is a snapshot previously produced by this
	// backend's MarshalBinary (typically from an earlier tuning session via
	// the history database). GP backends seed their first optimizer start at
	// the snapshot's hyperparameters; forests ignore it. A stale, corrupt,
	// or shape-incompatible snapshot silently degrades to a cold start —
	// transfer is best-effort and must never fail a fit.
	WarmStart []byte
}

// Fitter fits and restores models of one backend kind.
type Fitter interface {
	// Kind names the backend ("lcm", "gp-indep", "rf").
	Kind() string
	// Fit trains a model on data. The fitted model is bitwise independent of
	// opts.Workers.
	Fit(data *Dataset, opts FitOptions) (Model, error)
	// UnmarshalBinary rebuilds a model from a MarshalBinary snapshot. The
	// restored model predicts bitwise identically to the one that was saved
	// (except hyperparameter-only LCM snapshots, which only warm-start).
	UnmarshalBinary(data []byte) (Model, error)
}

// Backend kind names, as accepted by New and reported by Kind.
const (
	KindLCM     = "lcm"
	KindGPIndep = "gp-indep"
	KindSGP     = "sgp"
	KindRF      = "rf"
)

// registry is the single source of truth for backend selection: Kinds() and
// New both walk it, and every external restatement of the kind list (CLI
// -surrogate help, gptuned spec validation errors) is built from Kinds(), so
// registering a backend here is the whole job.
var registry = []struct {
	kind   string
	fitter Fitter
}{
	{KindLCM, lcmFitter{}},
	{KindGPIndep, gpIndepFitter{}},
	{KindSGP, sgpFitter{}},
	{KindRF, rfFitter{}},
}

// Kinds lists the available backend names in preference order.
func Kinds() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.kind
	}
	return names
}

// New returns the Fitter for the named backend. The empty string selects the
// default (the registry's first entry, "lcm"); unknown names are rejected
// with the valid set in the error so flag/spec validation can surface it
// verbatim.
func New(kind string) (Fitter, error) {
	if kind == "" {
		return registry[0].fitter, nil
	}
	for _, e := range registry {
		if e.kind == kind {
			return e.fitter, nil
		}
	}
	return nil, fmt.Errorf("surrogate: unknown kind %q (have %v)", kind, Kinds())
}
