package surrogate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gp"
)

// testDataset builds a small multitask dataset with correlated tasks.
func testDataset(seed int64, tasks, perTask int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Dim: 2, X: make([][][]float64, tasks), Y: make([][]float64, tasks)}
	for i := 0; i < tasks; i++ {
		for j := 0; j < perTask; j++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y := math.Sin(4*x[0]) + 0.5*float64(i)*x[1] + 0.05*rng.NormFloat64()
			d.X[i] = append(d.X[i], x)
			d.Y[i] = append(d.Y[i], y)
		}
	}
	return d
}

func TestNewSelectsBackends(t *testing.T) {
	for _, c := range []struct{ kind, want string }{
		{"", KindLCM}, {KindLCM, KindLCM}, {KindGPIndep, KindGPIndep}, {KindSGP, KindSGP}, {KindRF, KindRF},
	} {
		f, err := New(c.kind)
		if err != nil {
			t.Fatalf("New(%q): %v", c.kind, err)
		}
		if f.Kind() != c.want {
			t.Fatalf("New(%q).Kind() = %q, want %q", c.kind, f.Kind(), c.want)
		}
	}
	if _, err := New("kriging"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestAllBackendsFitPredictRoundTrip exercises the full Model contract for
// every backend: fit, allocation-free prediction through a workspace, and a
// marshal/unmarshal round trip that predicts bitwise identically.
func TestAllBackendsFitPredictRoundTrip(t *testing.T) {
	data := testDataset(1, 2, 12)
	for _, kind := range Kinds() {
		f, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Fit(data, FitOptions{NumStarts: 2, MaxIter: 20, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Kind() != kind || m.NumTasks() != 2 {
			t.Fatalf("%s: Kind=%q NumTasks=%d", kind, m.Kind(), m.NumTasks())
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s marshal: %v", kind, err)
		}
		back, err := f.UnmarshalBinary(blob)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", kind, err)
		}
		rng := rand.New(rand.NewSource(2))
		ws, wsBack := m.NewWorkspace(), back.NewWorkspace()
		for k := 0; k < 40; k++ {
			x := []float64{rng.Float64(), rng.Float64()}
			task := k % 2
			mu, v := m.PredictInto(ws, task, x)
			if math.IsNaN(mu) || math.IsNaN(v) || v < 0 {
				t.Fatalf("%s: degenerate posterior (%v, %v) at %v", kind, mu, v, x)
			}
			mu2, v2 := back.PredictInto(wsBack, task, x)
			if math.Float64bits(mu) != math.Float64bits(mu2) || math.Float64bits(v) != math.Float64bits(v2) {
				t.Fatalf("%s: round trip diverged at %v task %d", kind, x, task)
			}
		}
	}
}

// TestFitDeterministicAcrossWorkers pins the determinism contract at the
// abstraction boundary for every backend.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	data := testDataset(3, 2, 10)
	for _, kind := range Kinds() {
		f, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := f.Fit(data, FitOptions{NumStarts: 2, MaxIter: 15, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		m8, err := f.Fit(data, FitOptions{NumStarts: 2, MaxIter: 15, Seed: 5, Workers: 8})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rng := rand.New(rand.NewSource(4))
		ws1, ws8 := m1.NewWorkspace(), m8.NewWorkspace()
		for k := 0; k < 30; k++ {
			x := []float64{rng.Float64(), rng.Float64()}
			task := k % 2
			muA, vA := m1.PredictInto(ws1, task, x)
			muB, vB := m8.PredictInto(ws8, task, x)
			if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(vA) != math.Float64bits(vB) {
				t.Fatalf("%s: workers=1 vs workers=8 diverged at %v task %d", kind, x, task)
			}
		}
	}
}

// TestGPIndepMatchesLCMSingleTask is the backend-parity contract: with one
// task there is nothing to share across tasks, so the independent-GP backend
// must reduce to the LCM backend exactly — same seed, same clamped Q, same
// optimizer trajectory, bitwise-identical posterior.
func TestGPIndepMatchesLCMSingleTask(t *testing.T) {
	data := testDataset(9, 1, 14)
	opts := FitOptions{NumStarts: 3, MaxIter: 40, Seed: 21}

	lcmF, _ := New(KindLCM)
	indepF, _ := New(KindGPIndep)
	a, err := lcmF.Fit(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := indepF.Fit(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	wsA, wsB := a.NewWorkspace(), b.NewWorkspace()
	for k := 0; k < 60; k++ {
		x := []float64{rng.Float64(), rng.Float64()}
		muA, vA := a.PredictInto(wsA, 0, x)
		muB, vB := b.PredictInto(wsB, 0, x)
		if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(vA) != math.Float64bits(vB) {
			t.Fatalf("lcm vs gp-indep diverged at %v: (%v,%v) vs (%v,%v)", x, muA, vA, muB, vB)
		}
	}
}

// TestWarmStartRoundTrip: a snapshot saved by one fit changes (and
// determinizes) the next fit's optimizer trajectory for the GP backends, and
// corrupt or cross-kind snapshots degrade to a cold start instead of failing.
func TestWarmStartRoundTrip(t *testing.T) {
	data := testDataset(11, 2, 10)
	for _, kind := range []string{KindLCM, KindGPIndep} {
		f, _ := New(kind)
		prev, err := f.Fit(data, FitOptions{NumStarts: 2, MaxIter: 40, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		blob, err := prev.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		short := FitOptions{NumStarts: 1, MaxIter: 2, Seed: 13}
		cold, err := f.Fit(data, short)
		if err != nil {
			t.Fatal(err)
		}
		warmOpts := short
		warmOpts.WarmStart = blob
		warm, err := f.Fit(data, warmOpts)
		if err != nil {
			t.Fatal(err)
		}
		warm2, err := f.Fit(data, warmOpts)
		if err != nil {
			t.Fatal(err)
		}

		x := []float64{0.3, 0.6}
		wsC, wsW, wsW2 := cold.NewWorkspace(), warm.NewWorkspace(), warm2.NewWorkspace()
		muC, _ := cold.PredictInto(wsC, 0, x)
		muW, _ := warm.PredictInto(wsW, 0, x)
		muW2, _ := warm2.PredictInto(wsW2, 0, x)
		if math.Float64bits(muW) != math.Float64bits(muW2) {
			t.Fatalf("%s: warm-started fit not deterministic", kind)
		}
		if math.Float64bits(muW) == math.Float64bits(muC) {
			t.Fatalf("%s: warm start had no effect (mu %v)", kind, muC)
		}

		// Corrupt snapshot → cold start reproduced bitwise.
		badOpts := short
		badOpts.WarmStart = []byte("not a snapshot")
		fallback, err := f.Fit(data, badOpts)
		if err != nil {
			t.Fatalf("%s: corrupt warm start failed the fit: %v", kind, err)
		}
		wsF := fallback.NewWorkspace()
		muF, _ := fallback.PredictInto(wsF, 0, x)
		if math.Float64bits(muF) != math.Float64bits(muC) {
			t.Fatalf("%s: corrupt warm start did not degrade to cold fit", kind)
		}
	}

	// Forests ignore warm starts entirely.
	rfF, _ := New(KindRF)
	m1, err := rfF.Fit(data, FitOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := m1.MarshalBinary()
	m2, err := rfF.Fit(data, FitOptions{Seed: 2, WarmStart: blob})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4, 0.2}
	muA, vA := m1.PredictInto(m1.NewWorkspace(), 0, x)
	muB, vB := m2.PredictInto(m2.NewWorkspace(), 0, x)
	if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(vA) != math.Float64bits(vB) {
		t.Fatal("rf: warm start changed the fitted forest")
	}
}

// TestUnmarshalRejectsCrossKind: snapshot containers are kind-tagged and a
// backend refuses another backend's snapshot.
func TestUnmarshalRejectsCrossKind(t *testing.T) {
	data := testDataset(15, 2, 8)
	rfF, _ := New(KindRF)
	indepF, _ := New(KindGPIndep)
	m, err := rfF.Fit(data, FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := indepF.UnmarshalBinary(blob); err == nil {
		t.Fatal("gp-indep accepted an rf snapshot")
	}
	if _, err := rfF.UnmarshalBinary([]byte(`{"kind":"rf","models":[]}`)); err == nil {
		t.Fatal("empty model list accepted")
	}
}

// TestLCMAccessor: the concrete-model escape hatch returns the wrapped LCM
// for the lcm backend and nil otherwise.
func TestLCMAccessor(t *testing.T) {
	data := testDataset(17, 1, 8)
	lcmF, _ := New(KindLCM)
	rfF, _ := New(KindRF)
	a, err := lcmF.Fit(data, FitOptions{NumStarts: 1, MaxIter: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rfF.Fit(data, FitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := LCM(a); m == nil || m.NumTasks != 1 {
		t.Fatal("LCM accessor failed on lcm model")
	}
	if LCM(b) != nil {
		t.Fatal("LCM accessor returned non-nil for rf model")
	}
	var _ *gp.LCM = LCM(a)
}
