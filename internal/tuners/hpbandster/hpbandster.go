// Package hpbandster re-implements the model-based search of HpBandSter
// (Falkner et al., BOHB, ICML 2018), the second comparator of the paper's
// Section 6.6. The paper disables the multi-armed-bandit/hyperband feature
// ("since it requires running applications with varying fidelity/budgets"),
// leaving BOHB's Tree Parzen Estimator (TPE) Bayesian optimization: model
// the density of good configurations l(x) and bad configurations g(x) with
// kernel density estimators and evaluate the candidate maximizing l(x)/g(x).
package hpbandster

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/tuners"
)

// Tuner is a TPE-based autotuner (BOHB without hyperband).
type Tuner struct {
	// TopQuantile splits observations into the good/bad sets (default 0.15,
	// BOHB's top_n_percent=15).
	TopQuantile float64
	// NumCandidates scores this many samples from l(x) per iteration
	// (default 24, BOHB's num_samples subsampled).
	NumCandidates int
	// RandomFraction interleaves pure random configurations (default 1/3,
	// BOHB's default).
	RandomFraction float64
	// MinPoints is the observation count below which sampling is random
	// (default dim+2).
	MinPoints int
	// BandwidthFactor widens the sampling kernels (default 3, as in BOHB).
	BandwidthFactor float64
}

// Name implements tuners.Tuner.
func (Tuner) Name() string { return "hpbandster" }

// obs is one completed observation in normalized coordinates.
type obs struct {
	u []float64
	y float64
}

// Tune implements tuners.Tuner.
func (t Tuner) Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t.TopQuantile <= 0 || t.TopQuantile >= 1 {
		t.TopQuantile = 0.15
	}
	if t.NumCandidates <= 0 {
		t.NumCandidates = 24
	}
	if t.RandomFraction <= 0 {
		t.RandomFraction = 1.0 / 3
	}
	if t.BandwidthFactor <= 0 {
		t.BandwidthFactor = 3
	}
	dim := p.Tuning.Dim()
	minPoints := t.MinPoints
	if minPoints <= 0 {
		minPoints = dim + 2
	}
	rng := rand.New(rand.NewSource(seed))

	var observations []obs
	xs := make([][]float64, 0, epsTot)
	ys := make([][]float64, 0, epsTot)

	randomFeasible := func() ([]float64, error) {
		pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
		if err != nil {
			return nil, err
		}
		return pts[0], nil
	}

	for len(xs) < epsTot {
		var nat []float64
		var err error
		if len(observations) < minPoints || rng.Float64() < t.RandomFraction {
			nat, err = randomFeasible()
			if err != nil {
				return nil, err
			}
		} else {
			nat = t.proposeTPE(p, observations, dim, rng)
			if nat == nil {
				nat, err = randomFeasible()
				if err != nil {
					return nil, err
				}
			}
		}
		y, err := tuners.Evaluate(p, task, nat)
		if err != nil {
			continue
		}
		observations = append(observations, obs{u: p.Tuning.Normalize(nat), y: y[0]})
		xs = append(xs, nat)
		ys = append(ys, y)
	}
	return tuners.FinishResult(task, xs, ys), nil
}

// proposeTPE builds the l/g KDEs and returns the feasible candidate with the
// best density ratio, or nil when none is feasible.
func (t Tuner) proposeTPE(p *core.Problem, observations []obs, dim int, rng *rand.Rand) []float64 {
	// Split observations at the top quantile.
	idx := make([]int, len(observations))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return observations[idx[a]].y < observations[idx[b]].y })
	nGood := int(math.Ceil(t.TopQuantile * float64(len(observations))))
	if nGood < 2 {
		nGood = 2
	}
	if nGood >= len(observations) {
		nGood = len(observations) - 1
	}
	good := make([][]float64, 0, nGood)
	bad := make([][]float64, 0, len(observations)-nGood)
	for rank, i := range idx {
		if rank < nGood {
			good = append(good, observations[i].u)
		} else {
			bad = append(bad, observations[i].u)
		}
	}
	bwGood := scottBandwidths(good, dim)
	bwBad := scottBandwidths(bad, dim)

	var bestNat []float64
	bestScore := math.Inf(-1)
	for c := 0; c < t.NumCandidates; c++ {
		// Sample from l(x): pick a good point, jitter by widened bandwidth.
		center := good[rng.Intn(len(good))]
		u := make([]float64, dim)
		for d := range u {
			u[d] = center[d] + rng.NormFloat64()*bwGood[d]*t.BandwidthFactor
			if u[d] < 0 {
				u[d] = 0
			} else if u[d] > 1 {
				u[d] = 1
			}
		}
		nat := p.Tuning.Denormalize(u)
		if !p.Tuning.Feasible(nat) {
			continue
		}
		un := p.Tuning.Normalize(nat)
		score := logKDE(un, good, bwGood) - logKDE(un, bad, bwBad)
		if score > bestScore {
			bestScore = score
			bestNat = nat
		}
	}
	return bestNat
}

// scottBandwidths returns per-dimension Gaussian KDE bandwidths via Scott's
// rule, floored to keep the estimator proper on clustered data.
func scottBandwidths(pts [][]float64, dim int) []float64 {
	n := float64(len(pts))
	bw := make([]float64, dim)
	factor := math.Pow(n, -1.0/(float64(dim)+4))
	for d := 0; d < dim; d++ {
		mean := 0.0
		for _, p := range pts {
			mean += p[d]
		}
		mean /= n
		varr := 0.0
		for _, p := range pts {
			varr += (p[d] - mean) * (p[d] - mean)
		}
		sd := math.Sqrt(varr / n)
		bw[d] = sd * factor
		if bw[d] < 1e-3 {
			bw[d] = 1e-3
		}
	}
	return bw
}

// logKDE evaluates the log of a product-Gaussian KDE at u.
func logKDE(u []float64, pts [][]float64, bw []float64) float64 {
	if len(pts) == 0 {
		return math.Inf(-1)
	}
	total := math.Inf(-1)
	for _, p := range pts {
		lp := 0.0
		for d := range u {
			z := (u[d] - p[d]) / bw[d]
			lp += -0.5*z*z - math.Log(bw[d]*math.Sqrt(2*math.Pi))
		}
		total = logAdd(total, lp)
	}
	return total - math.Log(float64(len(pts)))
}

func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
