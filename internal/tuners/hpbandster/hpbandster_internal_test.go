package hpbandster

import (
	"math"

	"math/rand"
	"repro/internal/core"
	"repro/internal/space"
	"testing"
)

func TestScottBandwidths(t *testing.T) {
	pts := [][]float64{{0.1, 0.5}, {0.2, 0.5}, {0.3, 0.5}, {0.4, 0.5}}
	bw := scottBandwidths(pts, 2)
	if bw[0] <= 0 || bw[1] <= 0 {
		t.Fatalf("bandwidths %v", bw)
	}
	// Dimension 1 is constant: bandwidth must hit the floor, and be smaller
	// than dimension 0's.
	if bw[1] != 1e-3 {
		t.Fatalf("constant dimension bandwidth %v, want floor 1e-3", bw[1])
	}
	if bw[0] <= bw[1] {
		t.Fatalf("spread dimension bandwidth %v not above floor %v", bw[0], bw[1])
	}
}

func TestLogKDEPeaksAtData(t *testing.T) {
	pts := [][]float64{{0.5}}
	bw := []float64{0.1}
	at := logKDE([]float64{0.5}, pts, bw)
	off := logKDE([]float64{0.9}, pts, bw)
	if at <= off {
		t.Fatalf("KDE not peaked at data: %v vs %v", at, off)
	}
	if math.IsInf(logKDE([]float64{0.5}, nil, bw), -1) == false {
		t.Fatalf("empty KDE should be -inf")
	}
}

func TestLogAdd(t *testing.T) {
	// log(e^0 + e^0) = log 2.
	if got := logAdd(0, 0); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("logAdd(0,0) = %v", got)
	}
	if logAdd(math.Inf(-1), 3) != 3 || logAdd(3, math.Inf(-1)) != 3 {
		t.Fatalf("logAdd with -inf broken")
	}
	// Huge difference: the small term vanishes.
	if got := logAdd(1000, -1000); got != 1000 {
		t.Fatalf("logAdd(1000,-1000) = %v", got)
	}
}

func TestProposeTPESamplesNearGoodPoints(t *testing.T) {
	// Good points cluster near 0.2; bad near 0.8. TPE proposals must land
	// closer to the good cluster on average.
	rng := rand.New(rand.NewSource(1))
	tn := Tuner{TopQuantile: 0.3, NumCandidates: 32, BandwidthFactor: 1}
	var observations []obs
	for i := 0; i < 10; i++ {
		observations = append(observations, obs{u: []float64{0.2 + 0.02*float64(i%3)}, y: float64(i)})
	}
	for i := 0; i < 20; i++ {
		observations = append(observations, obs{u: []float64{0.8 + 0.01*float64(i%5)}, y: 100 + float64(i)})
	}
	p := probProblem()
	sum := 0.0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		nat := tn.proposeTPE(p, observations, 1, rng)
		if nat == nil {
			t.Fatalf("trial %d: no proposal", trial)
		}
		sum += nat[0]
	}
	if mean := sum / trials; mean > 0.5 {
		t.Fatalf("TPE proposals centered at %v, want near the good cluster (0.2)", mean)
	}
}

func TestTunerName(t *testing.T) {
	if (Tuner{}).Name() != "hpbandster" {
		t.Fatalf("name = %s", (Tuner{}).Name())
	}
}

// probProblem is a minimal 1-D problem used by internal tests.
func probProblem() *core.Problem {
	return &core.Problem{
		Name:    "internal",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{x[0]}, nil
		},
	}
}

func TestTuneEndToEndInPackage(t *testing.T) {
	p := &core.Problem{
		Name:    "hb",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d0, d1 := x[0]-0.7, x[1]-0.3
			return []float64{d0*d0 + d1*d1}, nil
		},
	}
	tr, err := (Tuner{}).Tune(p, []float64{0}, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.X) != 50 {
		t.Fatalf("evals = %d", len(tr.X))
	}
	_, y := tr.Best()
	if y[0] > 0.02 {
		t.Fatalf("TPE best %v, want near 0", y[0])
	}
}
