// Package opentuner re-implements the core architecture of OpenTuner
// (Ansel et al., PACT 2014), the first comparator of the paper's Section
// 6.6: an ensemble of model-free search techniques coordinated by a
// multi-armed bandit that allocates function evaluations to whichever
// technique has recently produced improvements (the "AUC bandit
// meta-technique").
package opentuner

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/tuners"
)

// Tuner is an OpenTuner-style bandit-ensemble autotuner.
type Tuner struct {
	// Window is the sliding history length used for AUC credit (default 50).
	Window int
	// ExploreC is the UCB exploration constant (default 0.05, OpenTuner's
	// default C).
	ExploreC float64
}

// Name implements tuners.Tuner.
func (Tuner) Name() string { return "opentuner" }

// result is one completed evaluation in the shared results database.
type result struct {
	u []float64 // normalized configuration
	y float64   // objective 0
}

// database is the shared state all techniques draw from.
type database struct {
	results []result
	bestIdx int
}

func (db *database) best() result { return db.results[db.bestIdx] }

func (db *database) add(r result) bool {
	improved := len(db.results) == 0 || r.y < db.best().y
	db.results = append(db.results, r)
	if improved {
		db.bestIdx = len(db.results) - 1
	}
	return improved
}

// topK returns up to k results with the smallest objective (unsorted order
// is fine for mutation sources).
func (db *database) topK(k int) []result {
	if len(db.results) <= k {
		return db.results
	}
	// Selection without full sort: simple partial pass.
	out := append([]result(nil), db.results...)
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(out); j++ {
			if out[j].y < out[min].y {
				min = j
			}
		}
		out[i], out[min] = out[min], out[i]
	}
	return out[:k]
}

// technique proposes the next normalized configuration given the database.
type technique interface {
	name() string
	propose(db *database, dim int, rng *rand.Rand) []float64
}

// uniformRandom: global random sampling.
type uniformRandom struct{}

func (uniformRandom) name() string { return "UniformRandom" }
func (uniformRandom) propose(db *database, dim int, rng *rand.Rand) []float64 {
	u := make([]float64, dim)
	for d := range u {
		u[d] = rng.Float64()
	}
	return u
}

// greedyMutationNormal: OpenTuner's NormalGreedyMutation — perturb a random
// subset of the best configuration's coordinates with Gaussian noise.
type greedyMutationNormal struct{ sigma float64 }

func (greedyMutationNormal) name() string { return "NormalGreedyMutation" }
func (t greedyMutationNormal) propose(db *database, dim int, rng *rand.Rand) []float64 {
	u := append([]float64(nil), db.best().u...)
	d := rng.Intn(dim)
	u[d] += rng.NormFloat64() * t.sigma
	return clip01(u)
}

// greedyMutationUniform: UniformGreedyMutation — resample one coordinate of
// the best configuration uniformly.
type greedyMutationUniform struct{}

func (greedyMutationUniform) name() string { return "UniformGreedyMutation" }
func (greedyMutationUniform) propose(db *database, dim int, rng *rand.Rand) []float64 {
	u := append([]float64(nil), db.best().u...)
	u[rng.Intn(dim)] = rng.Float64()
	return u
}

// differentialEvolution: DE/best/1/bin over the top of the database.
type differentialEvolution struct{ f, cr float64 }

func (differentialEvolution) name() string { return "DifferentialEvolution" }
func (t differentialEvolution) propose(db *database, dim int, rng *rand.Rand) []float64 {
	pool := db.topK(10)
	if len(pool) < 3 {
		return uniformRandom{}.propose(db, dim, rng)
	}
	a := pool[rng.Intn(len(pool))]
	b := pool[rng.Intn(len(pool))]
	best := db.best()
	u := make([]float64, dim)
	jrand := rng.Intn(dim)
	for d := 0; d < dim; d++ {
		if d == jrand || rng.Float64() < t.cr {
			u[d] = best.u[d] + t.f*(a.u[d]-b.u[d])
		} else {
			u[d] = best.u[d]
		}
	}
	return clip01(u)
}

// simplexReflection: a Nelder-Mead-flavored move — reflect a random recent
// point through the centroid of the current top dim+1 points.
type simplexReflection struct{}

func (simplexReflection) name() string { return "SimplexReflection" }
func (simplexReflection) propose(db *database, dim int, rng *rand.Rand) []float64 {
	pool := db.topK(dim + 1)
	if len(pool) < 2 {
		return uniformRandom{}.propose(db, dim, rng)
	}
	centroid := make([]float64, dim)
	for _, r := range pool {
		for d := range centroid {
			centroid[d] += r.u[d]
		}
	}
	for d := range centroid {
		centroid[d] /= float64(len(pool))
	}
	worst := db.results[rng.Intn(len(db.results))]
	u := make([]float64, dim)
	for d := range u {
		u[d] = centroid[d] + (centroid[d] - worst.u[d])
	}
	return clip01(u)
}

// annealedWalk: simulated-annealing-style random walk around the most recent
// result with a shrinking step.
type annealedWalk struct{}

func (annealedWalk) name() string { return "AnnealedWalk" }
func (annealedWalk) propose(db *database, dim int, rng *rand.Rand) []float64 {
	last := db.results[len(db.results)-1]
	temp := 0.3 * math.Pow(0.97, float64(len(db.results)))
	if temp < 0.02 {
		temp = 0.02
	}
	u := make([]float64, dim)
	for d := range u {
		u[d] = last.u[d] + rng.NormFloat64()*temp
	}
	return clip01(u)
}

func clip01(u []float64) []float64 {
	for i, v := range u {
		if v < 0 {
			u[i] = 0
		} else if v > 1 {
			u[i] = 1
		}
	}
	return u
}

// banditArm tracks one technique's recent history for AUC credit.
type banditArm struct {
	tech technique
	uses int
}

// Tune implements tuners.Tuner: a bandit over the technique ensemble, one
// objective evaluation per round.
func (t Tuner) Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	window := t.Window
	if window <= 0 {
		window = 50
	}
	exploreC := t.ExploreC
	if exploreC <= 0 {
		exploreC = 0.05
	}
	rng := rand.New(rand.NewSource(seed))
	dim := p.Tuning.Dim()

	arms := []*banditArm{
		{tech: uniformRandom{}},
		{tech: greedyMutationNormal{sigma: 0.1}},
		{tech: greedyMutationUniform{}},
		{tech: differentialEvolution{f: 0.7, cr: 0.5}},
		{tech: simplexReflection{}},
		{tech: annealedWalk{}},
	}
	type histEntry struct {
		arm      int
		improved bool
	}
	var history []histEntry

	// AUC credit: recency-weighted improvement rate over the sliding
	// window (OpenTuner's area-under-curve credit assignment).
	credit := func(arm int) float64 {
		num, den := 0.0, 0.0
		for pos, h := range history {
			if h.arm != arm {
				continue
			}
			w := float64(pos + 1)
			den += w
			if h.improved {
				num += w
			}
		}
		if den == 0 {
			return 0
		}
		return num / den
	}

	db := &database{}
	xs := make([][]float64, 0, epsTot)
	ys := make([][]float64, 0, epsTot)

	for len(xs) < epsTot {
		// Select a technique: UCB over AUC credit.
		sel := 0
		bestScore := math.Inf(-1)
		total := len(history) + 1
		for a, arm := range arms {
			score := credit(a) + exploreC*math.Sqrt(2*math.Log(float64(total))/float64(arm.uses+1))
			if score > bestScore {
				bestScore = score
				sel = a
			}
		}
		arm := arms[sel]
		arm.uses++

		// Propose (falling back to random until the database is seeded),
		// then denormalize and repair feasibility.
		var u []float64
		if len(db.results) == 0 {
			u = uniformRandom{}.propose(db, dim, rng)
		} else {
			u = arm.tech.propose(db, dim, rng)
		}
		nat := p.Tuning.Denormalize(u)
		if !p.Tuning.Feasible(nat) {
			pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
			if err != nil {
				return nil, err
			}
			nat = pts[0]
		}
		y, err := tuners.Evaluate(p, task, nat)
		if err != nil {
			// Treat failures as non-improvements and move on.
			history = append(history, histEntry{arm: sel, improved: false})
			if len(history) > window {
				history = history[1:]
			}
			continue
		}
		improved := db.add(result{u: p.Tuning.Normalize(nat), y: y[0]})
		history = append(history, histEntry{arm: sel, improved: improved})
		if len(history) > window {
			history = history[1:]
		}
		xs = append(xs, nat)
		ys = append(ys, y)
	}
	return tuners.FinishResult(task, xs, ys), nil
}
