package opentuner

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/space"
)

func seededDB(vals ...float64) *database {
	db := &database{}
	for i, v := range vals {
		db.add(result{u: []float64{float64(i) / 10, 0.5}, y: v})
	}
	return db
}

func TestDatabaseTracksBest(t *testing.T) {
	db := seededDB(5, 3, 4, 1, 2)
	if db.best().y != 1 {
		t.Fatalf("best = %v", db.best().y)
	}
	if !db.add(result{u: []float64{0.9, 0.9}, y: 0.5}) {
		t.Fatalf("improvement not reported")
	}
	if db.add(result{u: []float64{0.8, 0.8}, y: 9}) {
		t.Fatalf("non-improvement reported as improvement")
	}
}

func TestTopKSelectsSmallest(t *testing.T) {
	db := seededDB(5, 3, 4, 1, 2)
	top := db.topK(2)
	if len(top) != 2 {
		t.Fatalf("topK returned %d", len(top))
	}
	if top[0].y != 1 || top[1].y != 2 {
		t.Fatalf("topK = %v, %v", top[0].y, top[1].y)
	}
	// k larger than the database returns everything.
	if got := db.topK(100); len(got) != 5 {
		t.Fatalf("topK(100) = %d", len(got))
	}
}

func TestTechniquesProposeInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := seededDB(5, 3, 4, 1, 2)
	techs := []technique{
		uniformRandom{},
		greedyMutationNormal{sigma: 0.5},
		greedyMutationUniform{},
		differentialEvolution{f: 0.9, cr: 0.9},
		simplexReflection{},
		annealedWalk{},
	}
	for _, tech := range techs {
		for trial := 0; trial < 100; trial++ {
			u := tech.propose(db, 2, rng)
			if len(u) != 2 {
				t.Fatalf("%s: dim %d", tech.name(), len(u))
			}
			for _, v := range u {
				if v < 0 || v > 1 {
					t.Fatalf("%s proposed out-of-box %v", tech.name(), u)
				}
			}
		}
	}
}

func TestGreedyMutationStartsFromBest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := seededDB(5, 1)
	// Mutation changes exactly one coordinate of the best config.
	u := greedyMutationUniform{}.propose(db, 2, rng)
	diff := 0
	for d := range u {
		if u[d] != db.best().u[d] {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("uniform mutation changed %d coordinates", diff)
	}
}

func TestDEFallsBackWhenPoolSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := seededDB(1) // fewer than 3 results
	u := differentialEvolution{f: 0.7, cr: 0.5}.propose(db, 3, rng)
	if len(u) != 3 {
		t.Fatalf("fallback proposal wrong: %v", u)
	}
}

func TestTunerName(t *testing.T) {
	if (Tuner{}).Name() != "opentuner" {
		t.Fatalf("name = %s", (Tuner{}).Name())
	}
}

func TestTuneEndToEndInPackage(t *testing.T) {
	p := &core.Problem{
		Name:    "ot",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d0, d1 := x[0]-0.3, x[1]-0.7
			return []float64{d0*d0 + d1*d1}, nil
		},
	}
	tr, err := (Tuner{}).Tune(p, []float64{0}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.X) != 60 {
		t.Fatalf("evals = %d", len(tr.X))
	}
	_, y := tr.Best()
	if y[0] > 0.01 {
		t.Fatalf("bandit ensemble best %v, want near 0", y[0])
	}
	// The bandit must have spread uses across techniques yet still
	// converged — indirectly verified by the improvement sequence: the
	// best-so-far trace must improve after the first third.
	trace := tr.BestTrace()
	if trace[len(trace)-1] >= trace[len(trace)/3] {
		t.Fatalf("no improvement after warmup: %v vs %v", trace[len(trace)-1], trace[len(trace)/3])
	}
}

func TestTuneInfeasibleRepair(t *testing.T) {
	p := &core.Problem{
		Name:    "otc",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{x[0] + x[1]}, nil
		},
	}
	p.Tuning.AddConstraint("sum<=1", func(v map[string]float64) bool { return v["x0"]+v["x1"] <= 1 })
	tr, err := (Tuner{}).Tune(p, []float64{0}, 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range tr.X {
		if x[0]+x[1] > 1 {
			t.Fatalf("infeasible evaluation %v", x)
		}
	}
}
