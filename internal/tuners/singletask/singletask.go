// Package singletask wraps the MLA engine as a single-task (δ=1) tuner —
// exactly what the paper calls "single-task learning": GPTune run on one
// task at a time, the comparator of Section 6.5.
package singletask

import (
	"repro/internal/core"
	"repro/internal/opt"
)

// Tuner runs core MLA with δ=1 per task.
type Tuner struct {
	// Options are forwarded to core.Run; EpsTot and Seed are overridden by
	// the Tune arguments.
	Options core.Options
}

// Name implements tuners.Tuner.
func (Tuner) Name() string { return "gptune-singletask" }

// Tune implements tuners.Tuner.
func (t Tuner) Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error) {
	o := t.Options
	o.EpsTot = epsTot
	o.Seed = seed
	if o.Search.Particles == 0 {
		o.Search = opt.PSOParams{Particles: 20, MaxIter: 30}
	}
	res, err := core.Run(p, [][]float64{task}, o)
	if err != nil {
		return nil, err
	}
	tr := res.Tasks[0]
	return &tr, nil
}

// Stats is unavailable through the single-task interface; use core.Run
// directly when phase timings are needed (Table 3).
