package singletask

import (
	"testing"

	"repro/internal/core"
	"repro/internal/space"
)

func TestTuneRunsMLAOnOneTask(t *testing.T) {
	p := &core.Problem{
		Name:    "st",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d := x[0] - 0.25
			return []float64{d * d}, nil
		},
	}
	tn := Tuner{}
	if tn.Name() != "gptune-singletask" {
		t.Fatalf("name = %s", tn.Name())
	}
	tr, err := tn.Tune(p, []float64{0.5}, 14, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.X) != 14 {
		t.Fatalf("evals = %d", len(tr.X))
	}
	x, y := tr.Best()
	if y[0] > 0.01 {
		t.Fatalf("best y = %v at x = %v", y[0], x[0])
	}
	if tr.Task[0] != 0.5 {
		t.Fatalf("task not preserved: %v", tr.Task)
	}
}

func TestTuneRejectsInvalidProblem(t *testing.T) {
	if _, err := (Tuner{}).Tune(&core.Problem{}, []float64{0}, 4, 1); err == nil {
		t.Fatalf("invalid problem accepted")
	}
}

func TestOptionsForwarded(t *testing.T) {
	// Repeats in the embedded options must reach the engine: count calls.
	calls := 0
	p := &core.Problem{
		Name:    "st2",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			calls++
			return []float64{x[0]}, nil
		},
	}
	tn := Tuner{Options: core.Options{Repeats: 2}}
	if _, err := tn.Tune(p, []float64{0}, 6, 1); err != nil {
		t.Fatal(err)
	}
	if calls != 12 {
		t.Fatalf("objective called %d times, want 12 (6 evals × 2 repeats)", calls)
	}
}
