// Package surf implements a SuRF-style autotuner (Balaprakash, "Search
// using Random Forest", discussed in the paper's Section 5): model the
// objective with a random-forest regressor — which handles categorical
// parameters elegantly via axis-aligned splits — and pick each next
// configuration by maximizing Expected Improvement under the forest's
// ensemble mean/variance over a pool of random candidates.
package surf

import (
	"math"
	"math/rand"

	"repro/internal/acq"
	"repro/internal/core"
	"repro/internal/rf"
	"repro/internal/sample"
	"repro/internal/tuners"
)

// Tuner is a random-forest surrogate autotuner.
type Tuner struct {
	// Trees is the forest size (default 40).
	Trees int
	// Candidates is the random pool scored per iteration (default 200).
	Candidates int
	// InitSamples is the warmup before the first model (default dim+4).
	InitSamples int
}

// Name implements tuners.Tuner.
func (Tuner) Name() string { return "surf" }

// Tune implements tuners.Tuner.
func (t Tuner) Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t.Trees <= 0 {
		t.Trees = 40
	}
	if t.Candidates <= 0 {
		t.Candidates = 200
	}
	dim := p.Tuning.Dim()
	if t.InitSamples <= 0 {
		t.InitSamples = dim + 4
	}
	rng := rand.New(rand.NewSource(seed))

	xs := make([][]float64, 0, epsTot)
	ys := make([][]float64, 0, epsTot)
	var feats [][]float64 // normalized configurations for the forest
	var targets []float64

	evalAndRecord := func(nat []float64) bool {
		y, err := tuners.Evaluate(p, task, nat)
		if err != nil {
			return false
		}
		xs = append(xs, nat)
		ys = append(ys, y)
		feats = append(feats, p.Tuning.Normalize(nat))
		targets = append(targets, y[0])
		return true
	}

	for len(xs) < epsTot {
		var nat []float64
		if len(xs) < t.InitSamples {
			pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
			if err != nil {
				return nil, err
			}
			nat = pts[0]
		} else {
			forest, err := rf.Fit(feats, targets, rf.Params{
				Trees: t.Trees, Seed: seed + int64(len(xs)),
			})
			if err != nil {
				return nil, err
			}
			yBest := targets[0]
			for _, v := range targets {
				if v < yBest {
					yBest = v
				}
			}
			bestEI := math.Inf(-1)
			for c := 0; c < t.Candidates; c++ {
				pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
				if err != nil {
					return nil, err
				}
				u := p.Tuning.Normalize(pts[0])
				mean, variance := forest.Predict(u)
				if ei := acq.ExpectedImprovement(mean, variance, yBest); ei > bestEI {
					bestEI = ei
					nat = pts[0]
				}
			}
		}
		if nat == nil || !evalAndRecord(nat) {
			// Evaluation failure: spend the attempt on a fresh random point.
			pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
			if err != nil {
				return nil, err
			}
			if !evalAndRecord(pts[0]) {
				continue
			}
		}
	}
	return tuners.FinishResult(task, xs, ys), nil
}
