package surf

import (
	"testing"

	"repro/internal/core"
	"repro/internal/space"
)

func TestSurfConvergesOnQuadratic(t *testing.T) {
	p := &core.Problem{
		Name:    "sq",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d0, d1 := x[0]-0.6, x[1]-0.2
			return []float64{d0*d0 + d1*d1}, nil
		},
	}
	tr, err := Tuner{}.Tune(p, []float64{0}, 35, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.X) != 35 {
		t.Fatalf("evals = %d", len(tr.X))
	}
	_, y := tr.Best()
	if y[0] > 0.02 {
		t.Fatalf("best %v, want near 0", y[0])
	}
}

func TestSurfHandlesCategoricals(t *testing.T) {
	// Objective depends strongly on a categorical choice; SuRF must find
	// the best category within the budget.
	p := &core.Problem{
		Name:    "cat",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewCategorical("alg", "a", "b", "c", "d"), space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			penalty := []float64{3, 0, 2, 5}[int(x[0])]
			d := x[1] - 0.5
			return []float64{penalty + d*d}, nil
		},
	}
	tr, err := Tuner{}.Tune(p, []float64{0}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	bx, by := tr.Best()
	if bx[0] != 1 {
		t.Fatalf("best category %v (y=%v), want 1 (\"b\")", bx[0], by[0])
	}
}

func TestSurfName(t *testing.T) {
	if (Tuner{}).Name() != "surf" {
		t.Fatalf("name = %s", (Tuner{}).Name())
	}
}
