// Package tuners defines the common single-task tuner interface through
// which GPTune's comparators are invoked (the paper's Section 6.1 notes that
// the GPTune interface can invoke other autotuners as well), plus the
// simplest baselines of Section 5: random search and grid search.
//
// OpenTuner- and HpBandSter-style tuners live in the opentuner and
// hpbandster subpackages. The paper runs both separately per task since
// neither supports multitask learning; Tune therefore receives exactly one
// task.
package tuners

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sample"
)

// Tuner tunes one task of a problem under a fixed evaluation budget.
type Tuner interface {
	Name() string
	// Tune evaluates at most epsTot configurations for the given native
	// task and returns them in evaluation order.
	Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error)
}

// Evaluate runs the objective once and validates the outputs, returning an
// error for non-finite metrics.
func Evaluate(p *core.Problem, task, x []float64) ([]float64, error) {
	y, err := p.Objective(task, x)
	if err != nil {
		return nil, err
	}
	if len(y) != p.Outputs.Dim() {
		return nil, fmt.Errorf("tuners: objective returned %d outputs, want %d", len(y), p.Outputs.Dim())
	}
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("tuners: non-finite objective output")
		}
	}
	return y, nil
}

// FinishResult computes BestIdx and wraps the trajectory.
func FinishResult(task []float64, xs, ys [][]float64) *core.TaskResult {
	tr := &core.TaskResult{Task: task, X: xs, Y: ys}
	for j := range ys {
		if ys[j][0] < ys[tr.BestIdx][0] {
			tr.BestIdx = j
		}
	}
	return tr
}

// Random is uniform random search over the feasible tuning space.
type Random struct{}

// Name implements Tuner.
func (Random) Name() string { return "random" }

// Tune implements Tuner.
func (Random) Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, 0, epsTot)
	ys := make([][]float64, 0, epsTot)
	for len(xs) < epsTot {
		pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
		if err != nil {
			return nil, err
		}
		y, err := Evaluate(p, task, pts[0])
		if err != nil {
			continue // failed configuration: spend the attempt, not the run
		}
		xs = append(xs, pts[0])
		ys = append(ys, y)
	}
	return FinishResult(task, xs, ys), nil
}

// Grid is coarse grid search: the budget is spread over an axis-aligned
// grid with ⌈epsTot^(1/β)⌉ levels per dimension (Section 5's "grid search",
// intractable in high dimensions — which is the point of the comparison).
type Grid struct{}

// Name implements Tuner.
func (Grid) Name() string { return "grid" }

// Tune implements Tuner.
func (Grid) Tune(p *core.Problem, task []float64, epsTot int, seed int64) (*core.TaskResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dim := p.Tuning.Dim()
	levels := int(math.Ceil(math.Pow(float64(epsTot), 1/float64(dim))))
	if levels < 2 {
		levels = 2
	}
	xs := make([][]float64, 0, epsTot)
	ys := make([][]float64, 0, epsTot)
	u := make([]float64, dim)
	idx := make([]int, dim)
	for {
		if len(xs) >= epsTot {
			break
		}
		for d := 0; d < dim; d++ {
			u[d] = float64(idx[d]) / float64(levels-1)
		}
		nat := p.Tuning.Denormalize(u)
		if p.Tuning.Feasible(nat) {
			if y, err := Evaluate(p, task, nat); err == nil {
				xs = append(xs, append([]float64(nil), nat...))
				ys = append(ys, y)
			}
		}
		// Advance the mixed-radix counter; stop after the last cell.
		d := 0
		for d < dim {
			idx[d]++
			if idx[d] < levels {
				break
			}
			idx[d] = 0
			d++
		}
		if d == dim {
			break
		}
	}
	if len(xs) == 0 {
		return nil, errors.New("tuners: grid search found no feasible evaluable point")
	}
	return FinishResult(task, xs, ys), nil
}
