package tuners_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/tuners"
	"repro/internal/tuners/hpbandster"
	"repro/internal/tuners/opentuner"
	"repro/internal/tuners/singletask"
	"repro/internal/tuners/surf"
)

// quadProblem has a smooth quadratic objective with minimum 0 at
// x = (0.3, 0.7), plus the task parameter shifting the minimum value.
func quadProblem() *core.Problem {
	return &core.Problem{
		Name:    "quad",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d0 := x[0] - 0.3
			d1 := x[1] - 0.7
			return []float64{task[0] + 10*(d0*d0+d1*d1)}, nil
		},
	}
}

// ridgeProblem is multimodal with a narrow global valley — harder for pure
// random search.
func ridgeProblem() *core.Problem {
	return &core.Problem{
		Name:    "ridge",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			v := math.Sin(6*math.Pi*x[0])*math.Cos(4*math.Pi*x[1]) +
				5*math.Abs(x[0]-0.5) + 2*(x[1]-0.25)*(x[1]-0.25)
			return []float64{v}, nil
		},
	}
}

func allTuners() []tuners.Tuner {
	return []tuners.Tuner{
		tuners.Random{},
		tuners.Grid{},
		opentuner.Tuner{},
		hpbandster.Tuner{},
		surf.Tuner{},
		singletask.Tuner{},
	}
}

func TestAllTunersRespectBudgetAndBounds(t *testing.T) {
	p := quadProblem()
	for _, tn := range allTuners() {
		tr, err := tn.Tune(p, []float64{0.5}, 12, 1)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if len(tr.X) > 12 || len(tr.X) == 0 {
			t.Fatalf("%s: %d evaluations (budget 12)", tn.Name(), len(tr.X))
		}
		if len(tr.X) != len(tr.Y) {
			t.Fatalf("%s: X/Y length mismatch", tn.Name())
		}
		for _, x := range tr.X {
			if x[0] < 0 || x[0] > 1 || x[1] < 0 || x[1] > 1 {
				t.Fatalf("%s: out-of-bounds config %v", tn.Name(), x)
			}
		}
		bx, by := tr.Best()
		if by[0] != tr.Y[tr.BestIdx][0] || bx == nil {
			t.Fatalf("%s: inconsistent best", tn.Name())
		}
	}
}

func TestModelBasedTunersBeatBudgetedRandom(t *testing.T) {
	// On the smooth quadratic with a decent budget, OpenTuner, HpBandSter
	// and single-task GPTune should all find a much better optimum than the
	// worst random draw — sanity that they actually exploit structure.
	p := quadProblem()
	const budget = 40
	for _, tn := range []tuners.Tuner{opentuner.Tuner{}, hpbandster.Tuner{}, surf.Tuner{}, singletask.Tuner{}} {
		tr, err := tn.Tune(p, []float64{0}, budget, 7)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		_, by := tr.Best()
		if by[0] > 0.3 {
			t.Errorf("%s: best %v after %d evals on a smooth quadratic", tn.Name(), by[0], budget)
		}
	}
}

func TestTunersRespectConstraints(t *testing.T) {
	p := quadProblem()
	p.Tuning.AddConstraint("x1>=x0", func(v map[string]float64) bool { return v["x1"] >= v["x0"] })
	for _, tn := range allTuners() {
		tr, err := tn.Tune(p, []float64{0}, 10, 2)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		for _, x := range tr.X {
			if x[1] < x[0] {
				t.Fatalf("%s: constraint violated at %v", tn.Name(), x)
			}
		}
	}
}

func TestTunersSurviveFailingEvaluations(t *testing.T) {
	p := ridgeProblem()
	inner := p.Objective
	calls := 0
	p.Objective = func(task, x []float64) ([]float64, error) {
		calls++
		if calls%4 == 0 {
			return nil, errors.New("injected crash")
		}
		return inner(task, x)
	}
	for _, tn := range []tuners.Tuner{tuners.Random{}, opentuner.Tuner{}, hpbandster.Tuner{}, surf.Tuner{}} {
		calls = 0
		tr, err := tn.Tune(p, []float64{0}, 10, 3)
		if err != nil {
			t.Fatalf("%s: did not survive failures: %v", tn.Name(), err)
		}
		if len(tr.X) != 10 {
			t.Fatalf("%s: got %d evals", tn.Name(), len(tr.X))
		}
	}
}

func TestGridCoversCorners(t *testing.T) {
	p := quadProblem()
	tr, err := tuners.Grid{}.Tune(p, []float64{0}, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 9 points in 2-D → 3 levels/dim; corners (0,0) and (1,1) included.
	found00, found11 := false, false
	for _, x := range tr.X {
		if x[0] == 0 && x[1] == 0 {
			found00 = true
		}
		if x[0] == 1 && x[1] == 1 {
			found11 = true
		}
	}
	if !found00 || !found11 {
		t.Fatalf("grid missing corners: %v", tr.X)
	}
}

func TestOpenTunerDeterministicPerSeed(t *testing.T) {
	p := ridgeProblem()
	a, err := opentuner.Tuner{}.Tune(p, []float64{0}, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opentuner.Tuner{}.Tune(p, []float64{0}, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		for d := range a.X[i] {
			if a.X[i][d] != b.X[i][d] {
				t.Fatalf("same seed diverged at sample %d", i)
			}
		}
	}
}

func TestHpBandSterUsesModelAfterWarmup(t *testing.T) {
	// With RandomFraction ~0 and enough warmup, TPE proposals should
	// concentrate: the mean distance of late samples to the optimum should
	// be smaller than that of early (random) samples.
	p := quadProblem()
	tr, err := hpbandster.Tuner{RandomFraction: 1e-9}.Tune(p, []float64{0}, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	distTo := func(x []float64) float64 {
		return math.Hypot(x[0]-0.3, x[1]-0.7)
	}
	early, late := 0.0, 0.0
	for i, x := range tr.X {
		if i < 10 {
			early += distTo(x)
		} else if i >= 30 {
			late += distTo(x)
		}
	}
	if late/10 >= early/10 {
		t.Fatalf("TPE not concentrating: early mean dist %v, late %v", early/10, late/10)
	}
}
